//! Route-selection strategies.
//!
//! Strategies are pure: given the network, a pair and the fault set they
//! return a full route or `None` (unroutable). The simulator charges an
//! unroutable packet as a drop at injection time.

use crate::faults::FaultLookup;
use crate::net::{Network, RouteScratch};
use hhc_core::{NodeId, Path};
use rand::Rng;

/// How sources pick routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The deterministic single route of [`hhc_core::routing::route`].
    /// Fails if any node on that one route is faulty.
    SinglePath,
    /// Uniformly random member of the `m + 1` node-disjoint paths —
    /// oblivious load balancing. Ignores faults (pure performance mode).
    MultipathRandom,
    /// Picks uniformly among the *fault-free* members of the `m + 1`
    /// disjoint paths; fails only if all of them are blocked (impossible
    /// for `f ≤ m` faults when the endpoints are alive).
    FaultAdaptive,
    /// Valiant's two-phase randomised routing: route deterministically to
    /// a uniformly random intermediate node, then on to the destination.
    /// The classic fix for adversarial permutation traffic — it converts
    /// any pattern into two uniform-random phases at the cost of ~2×
    /// path length. The walk may revisit nodes (that is fine in a
    /// store-and-forward network). Fails only if faults block the chosen
    /// walk after a bounded number of redraws.
    Valiant,
}

impl Strategy {
    /// Selects a route from `src` to `dst` (`src ≠ dst`), or `None` if the
    /// strategy cannot route around the faults. Allocates a fresh scratch
    /// per call; loops should use [`Strategy::select_with`].
    pub fn select<N: Network + ?Sized, F: FaultLookup + ?Sized, R: Rng>(
        &self,
        net: &N,
        src: NodeId,
        dst: NodeId,
        faults: &F,
        rng: &mut R,
    ) -> Option<Path> {
        self.select_with(net, src, dst, faults, rng, &mut RouteScratch::new())
    }

    /// [`Strategy::select`] with caller-owned route scratch: the disjoint
    /// family is built into the scratch's buffers and only the chosen
    /// route is copied out. Identical routes and RNG draw sequence.
    pub fn select_with<N: Network + ?Sized, F: FaultLookup + ?Sized, R: Rng>(
        &self,
        net: &N,
        src: NodeId,
        dst: NodeId,
        faults: &F,
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> Option<Path> {
        let mut out = Vec::new();
        self.select_into(net, src, dst, faults, rng, scratch, &mut out)
            .then_some(out)
    }

    /// [`Strategy::select_with`] writing the chosen route into `out`
    /// (cleared first); returns whether a route was selected. The
    /// allocation-free form the simulator's injection loop uses — one
    /// route buffer lives for the whole run. Same routes, same RNG draw
    /// sequence as the allocating forms (which delegate here).
    #[allow(clippy::too_many_arguments)]
    pub fn select_into<N: Network + ?Sized, F: FaultLookup + ?Sized, R: Rng>(
        &self,
        net: &N,
        src: NodeId,
        dst: NodeId,
        faults: &F,
        rng: &mut R,
        scratch: &mut RouteScratch,
        out: &mut Vec<NodeId>,
    ) -> bool {
        debug_assert_ne!(src, dst);
        debug_assert!(!faults.is_faulty(src) && !faults.is_faulty(dst));
        out.clear();
        match self {
            Strategy::SinglePath => {
                let p = net.route(src, dst);
                if path_blocked(&p, faults) {
                    false
                } else {
                    out.extend_from_slice(&p);
                    true
                }
            }
            Strategy::MultipathRandom => {
                let paths = net.disjoint_routes_into(src, dst, scratch);
                let i = rng.gen_range(0..paths.len());
                out.extend_from_slice(paths.path(i));
                true
            }
            Strategy::FaultAdaptive => {
                let paths = net.disjoint_routes_into(src, dst, scratch);
                let alive = paths.iter().filter(|p| !path_blocked(p, faults)).count();
                if alive == 0 {
                    false
                } else {
                    let i = rng.gen_range(0..alive);
                    let p = paths
                        .iter()
                        .filter(|p| !path_blocked(p, faults))
                        .nth(i)
                        .expect("i < alive");
                    out.extend_from_slice(p);
                    true
                }
            }
            Strategy::Valiant => {
                let mask = net.address_mask();
                for _ in 0..8 {
                    let w = NodeId::from_raw(
                        ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask,
                    );
                    if w == src || w == dst || faults.is_faulty(w) {
                        continue;
                    }
                    out.clear();
                    out.extend_from_slice(&net.route(src, w));
                    out.extend(net.route(w, dst).into_iter().skip(1));
                    if !path_blocked(out, faults) {
                        return true;
                    }
                }
                false
            }
        }
    }
}

/// Whether any node of `path` (endpoints included) is faulty.
pub fn path_blocked<F: FaultLookup + ?Sized>(path: &[NodeId], faults: &F) -> bool {
    path.iter().any(|&v| faults.is_faulty(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSet;
    use hhc_core::Hhc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn setup() -> (Hhc, NodeId, NodeId, StdRng) {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0000, 0b00).unwrap();
        let v = h.node(0b1010, 0b11).unwrap();
        (h, u, v, StdRng::seed_from_u64(1))
    }

    #[test]
    fn single_path_is_the_router_route() {
        let (h, u, v, mut rng) = setup();
        let p = Strategy::SinglePath
            .select(&h, u, v, &HashSet::new(), &mut rng)
            .unwrap();
        assert_eq!(p, h.route(u, v).unwrap());
    }

    #[test]
    fn single_path_fails_when_blocked() {
        let (h, u, v, mut rng) = setup();
        let p = h.route(u, v).unwrap();
        let faults: HashSet<_> = [p[1]].into_iter().collect();
        assert!(Strategy::SinglePath
            .select(&h, u, v, &faults, &mut rng)
            .is_none());
    }

    #[test]
    fn multipath_random_spreads_over_disjoint_paths() {
        let (h, u, v, mut rng) = setup();
        let all = h.disjoint_paths(u, v).unwrap();
        let mut chosen = std::collections::HashSet::new();
        // One scratch for the whole loop (`select` allocates per call).
        let mut scratch = RouteScratch::new();
        for _ in 0..100 {
            let p = Strategy::MultipathRandom
                .select_with(&h, u, v, &FaultSet::default(), &mut rng, &mut scratch)
                .unwrap();
            assert!(all.contains(&p));
            chosen.insert(p);
        }
        assert_eq!(chosen.len(), all.len(), "should eventually use every path");
    }

    #[test]
    fn fault_adaptive_survives_m_faults() {
        let (h, u, v, mut rng) = setup();
        // Block interior nodes of m of the m+1 paths: still routable.
        let paths = h.disjoint_paths(u, v).unwrap();
        let faults: HashSet<_> = paths[..h.m() as usize].iter().map(|p| p[1]).collect();
        let p = Strategy::FaultAdaptive
            .select(&h, u, v, &faults, &mut rng)
            .unwrap();
        assert!(!path_blocked(&p, &faults));
    }

    #[test]
    fn valiant_walks_are_valid_and_varied() {
        let (h, u, v, mut rng) = setup();
        let mut lengths = std::collections::HashSet::new();
        let mut scratch = RouteScratch::new();
        for _ in 0..50 {
            let w = Strategy::Valiant
                .select_with(&h, u, v, &FaultSet::default(), &mut rng, &mut scratch)
                .unwrap();
            assert_eq!(*w.first().unwrap(), u);
            assert_eq!(*w.last().unwrap(), v);
            for pair in w.windows(2) {
                assert!(
                    crate::net::Network::is_edge(&h, pair[0], pair[1]),
                    "valiant walk uses a non-edge"
                );
            }
            lengths.insert(w.len());
        }
        assert!(
            lengths.len() > 1,
            "random intermediates should vary lengths"
        );
    }

    #[test]
    fn valiant_avoids_faults() {
        let (h, u, v, mut rng) = setup();
        let direct = h.route(u, v).unwrap();
        let faults: FaultSet = [direct[1]].into_iter().collect();
        let mut scratch = RouteScratch::new();
        for _ in 0..20 {
            if let Some(w) =
                Strategy::Valiant.select_with(&h, u, v, &faults, &mut rng, &mut scratch)
            {
                assert!(!path_blocked(&w, &faults));
            }
        }
    }

    #[test]
    fn fault_adaptive_fails_only_when_all_blocked() {
        let (h, u, v, mut rng) = setup();
        let paths = h.disjoint_paths(u, v).unwrap();
        let faults: HashSet<_> = paths.iter().map(|p| p[1]).collect();
        assert!(Strategy::FaultAdaptive
            .select(&h, u, v, &faults, &mut rng)
            .is_none());
    }
}
