//! Route-selection strategies.
//!
//! Strategies are pure: given the network, a pair and the fault set they
//! return a full route or `None` (unroutable). The simulator charges an
//! unroutable packet as a drop at injection time.
//!
//! ```
//! use hhc_core::Hhc;
//! use netsim::{FaultSet, Strategy};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let h = Hhc::new(2).unwrap();
//! let (u, v) = (h.node(0, 0).unwrap(), h.node(0xA, 3).unwrap());
//! let mut rng = StdRng::seed_from_u64(1);
//! let route = Strategy::SinglePath
//!     .select(&h, u, v, &FaultSet::default(), &mut rng)
//!     .expect("no faults: always routable");
//! assert_eq!(route.first(), Some(&u));
//! assert_eq!(route.last(), Some(&v));
//! ```

use crate::faults::FaultLookup;
use crate::net::{Network, RouteScratch};
use hhc_core::{NodeId, Path};
use rand::Rng;

/// How sources pick routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The deterministic single route of [`hhc_core::routing::route`].
    /// Fails if any node on that one route is faulty.
    SinglePath,
    /// Uniformly random member of the `m + 1` node-disjoint paths —
    /// oblivious load balancing. Ignores faults (pure performance mode).
    MultipathRandom,
    /// Picks uniformly among the *fault-free* members of the `m + 1`
    /// disjoint paths; fails only if all of them are blocked (impossible
    /// for `f ≤ m` faults when the endpoints are alive).
    FaultAdaptive,
    /// Requests a fault-free disjoint family directly from the network
    /// ([`Network::disjoint_routes_avoiding_into`]) and picks uniformly
    /// among its members. Where [`Strategy::FaultAdaptive`] filters a
    /// fault-blind family — and collapses once the faults blanket most
    /// of it — this *constructs around* the faults, so on fault-aware
    /// topologies (the HHC) it sustains delivery at fault counts where
    /// selection-time filtering fails.
    FaultFree,
    /// Valiant's two-phase randomised routing: route deterministically to
    /// a uniformly random intermediate node, then on to the destination.
    /// The classic fix for adversarial permutation traffic — it converts
    /// any pattern into two uniform-random phases at the cost of ~2×
    /// path length. The walk may revisit nodes (that is fine in a
    /// store-and-forward network). Fails only if faults block the chosen
    /// walk after a bounded number of redraws.
    Valiant,
}

impl Strategy {
    /// Selects a route from `src` to `dst` (`src ≠ dst`), or `None` if the
    /// strategy cannot route around the faults. Allocates a fresh scratch
    /// per call; loops should use [`Strategy::select_with`].
    pub fn select<N: Network + ?Sized, F: FaultLookup + ?Sized, R: Rng>(
        &self,
        net: &N,
        src: NodeId,
        dst: NodeId,
        faults: &F,
        rng: &mut R,
    ) -> Option<Path> {
        self.select_with(net, src, dst, faults, rng, &mut RouteScratch::new())
    }

    /// [`Strategy::select`] with caller-owned route scratch: the disjoint
    /// family is built into the scratch's buffers and only the chosen
    /// route is copied out. Identical routes and RNG draw sequence.
    pub fn select_with<N: Network + ?Sized, F: FaultLookup + ?Sized, R: Rng>(
        &self,
        net: &N,
        src: NodeId,
        dst: NodeId,
        faults: &F,
        rng: &mut R,
        scratch: &mut RouteScratch,
    ) -> Option<Path> {
        let mut out = Vec::new();
        self.select_into(net, src, dst, faults, rng, scratch, &mut out)
            .then_some(out)
    }

    /// [`Strategy::select_with`] writing the chosen route into `out`
    /// (cleared first); returns whether a route was selected. The
    /// allocation-free form the simulator's injection loop uses — one
    /// route buffer lives for the whole run. Same routes, same RNG draw
    /// sequence as the allocating forms (which delegate here).
    #[allow(clippy::too_many_arguments)]
    pub fn select_into<N: Network + ?Sized, F: FaultLookup + ?Sized, R: Rng>(
        &self,
        net: &N,
        src: NodeId,
        dst: NodeId,
        faults: &F,
        rng: &mut R,
        scratch: &mut RouteScratch,
        out: &mut Vec<NodeId>,
    ) -> bool {
        debug_assert_ne!(src, dst);
        debug_assert!(!faults.is_faulty(src) && !faults.is_faulty(dst));
        out.clear();
        match self {
            Strategy::SinglePath => {
                let p = net.route(src, dst);
                if path_blocked(&p, faults) {
                    false
                } else {
                    out.extend_from_slice(&p);
                    true
                }
            }
            Strategy::MultipathRandom => {
                let paths = net.disjoint_routes_into(src, dst, scratch);
                let i = rng.gen_range(0..paths.len());
                out.extend_from_slice(paths.path(i));
                true
            }
            Strategy::FaultAdaptive => {
                // Single pass over the family: collect the indices of the
                // fault-free members, then index the draw directly. (The
                // previous count-then-`nth` form walked the filter twice,
                // re-probing the fault set for every node of every path.)
                let mut alive = std::mem::take(&mut scratch.alive_idx);
                alive.clear();
                let paths = net.disjoint_routes_into(src, dst, scratch);
                alive.extend(
                    paths
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| !path_blocked(p, faults))
                        .map(|(i, _)| i as u32),
                );
                let routed = if alive.is_empty() {
                    false
                } else {
                    let i = rng.gen_range(0..alive.len());
                    out.extend_from_slice(paths.path(alive[i] as usize));
                    true
                };
                scratch.alive_idx = alive;
                routed
            }
            Strategy::FaultFree => {
                let shim = OracleShim(faults);
                let paths = net.disjoint_routes_avoiding_into(src, dst, &shim, scratch);
                if paths.is_empty() {
                    false
                } else {
                    let i = rng.gen_range(0..paths.len());
                    out.extend_from_slice(paths.path(i));
                    true
                }
            }
            Strategy::Valiant => {
                let mask = net.address_mask();
                for _ in 0..8 {
                    let w = NodeId::from_raw(
                        ((rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128) & mask,
                    );
                    if w == src || w == dst || faults.is_faulty(w) {
                        continue;
                    }
                    out.clear();
                    out.extend_from_slice(&net.route(src, w));
                    out.extend(net.route(w, dst).into_iter().skip(1));
                    if !path_blocked(out, faults) {
                        return true;
                    }
                }
                // Every redraw was blocked: honour the "cleared first"
                // contract rather than leaking the last blocked walk.
                out.clear();
                false
            }
        }
    }
}

/// Adapts a generic `F: FaultLookup + ?Sized` borrow into a sized value
/// that coerces to `&dyn FaultLookup` — the form
/// [`Network::disjoint_routes_avoiding_into`] (and through it the
/// construction layer) accepts.
struct OracleShim<'a, F: ?Sized>(&'a F);

impl<F: FaultLookup + ?Sized> FaultLookup for OracleShim<'_, F> {
    fn is_faulty(&self, v: NodeId) -> bool {
        self.0.is_faulty(v)
    }

    fn fault_count(&self) -> usize {
        self.0.fault_count()
    }
}

/// Whether any node of `path` (endpoints included) is faulty.
pub fn path_blocked<F: FaultLookup + ?Sized>(path: &[NodeId], faults: &F) -> bool {
    path.iter().any(|&v| faults.is_faulty(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSet;
    use hhc_core::Hhc;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn setup() -> (Hhc, NodeId, NodeId, StdRng) {
        let h = Hhc::new(2).unwrap();
        let u = h.node(0b0000, 0b00).unwrap();
        let v = h.node(0b1010, 0b11).unwrap();
        (h, u, v, StdRng::seed_from_u64(1))
    }

    #[test]
    fn single_path_is_the_router_route() {
        let (h, u, v, mut rng) = setup();
        let p = Strategy::SinglePath
            .select(&h, u, v, &HashSet::new(), &mut rng)
            .unwrap();
        assert_eq!(p, h.route(u, v).unwrap());
    }

    #[test]
    fn single_path_fails_when_blocked() {
        let (h, u, v, mut rng) = setup();
        let p = h.route(u, v).unwrap();
        let faults: HashSet<_> = [p[1]].into_iter().collect();
        assert!(Strategy::SinglePath
            .select(&h, u, v, &faults, &mut rng)
            .is_none());
    }

    #[test]
    fn multipath_random_spreads_over_disjoint_paths() {
        let (h, u, v, mut rng) = setup();
        let all = h.disjoint_paths(u, v).unwrap();
        let mut chosen = std::collections::HashSet::new();
        // One scratch for the whole loop (`select` allocates per call).
        let mut scratch = RouteScratch::new();
        for _ in 0..100 {
            let p = Strategy::MultipathRandom
                .select_with(&h, u, v, &FaultSet::default(), &mut rng, &mut scratch)
                .unwrap();
            assert!(all.contains(&p));
            chosen.insert(p);
        }
        assert_eq!(chosen.len(), all.len(), "should eventually use every path");
    }

    #[test]
    fn fault_adaptive_survives_m_faults() {
        let (h, u, v, mut rng) = setup();
        // Block interior nodes of m of the m+1 paths: still routable.
        let paths = h.disjoint_paths(u, v).unwrap();
        let faults: HashSet<_> = paths[..h.m() as usize].iter().map(|p| p[1]).collect();
        let p = Strategy::FaultAdaptive
            .select(&h, u, v, &faults, &mut rng)
            .unwrap();
        assert!(!path_blocked(&p, &faults));
    }

    #[test]
    fn valiant_walks_are_valid_and_varied() {
        let (h, u, v, mut rng) = setup();
        let mut lengths = std::collections::HashSet::new();
        let mut scratch = RouteScratch::new();
        for _ in 0..50 {
            let w = Strategy::Valiant
                .select_with(&h, u, v, &FaultSet::default(), &mut rng, &mut scratch)
                .unwrap();
            assert_eq!(*w.first().unwrap(), u);
            assert_eq!(*w.last().unwrap(), v);
            for pair in w.windows(2) {
                assert!(
                    crate::net::Network::is_edge(&h, pair[0], pair[1]),
                    "valiant walk uses a non-edge"
                );
            }
            lengths.insert(w.len());
        }
        assert!(
            lengths.len() > 1,
            "random intermediates should vary lengths"
        );
    }

    #[test]
    fn valiant_avoids_faults() {
        let (h, u, v, mut rng) = setup();
        let direct = h.route(u, v).unwrap();
        let faults: FaultSet = [direct[1]].into_iter().collect();
        let mut scratch = RouteScratch::new();
        for _ in 0..20 {
            if let Some(w) =
                Strategy::Valiant.select_with(&h, u, v, &faults, &mut rng, &mut scratch)
            {
                assert!(!path_blocked(&w, &faults));
            }
        }
    }

    #[test]
    fn fault_adaptive_fails_only_when_all_blocked() {
        let (h, u, v, mut rng) = setup();
        let paths = h.disjoint_paths(u, v).unwrap();
        let faults: HashSet<_> = paths.iter().map(|p| p[1]).collect();
        assert!(Strategy::FaultAdaptive
            .select(&h, u, v, &faults, &mut rng)
            .is_none());
    }

    /// Regression: a failed Valiant selection must leave `out` empty —
    /// the old code fell out of the redraw loop with the last *blocked*
    /// walk still in the buffer.
    #[test]
    fn valiant_failure_leaves_out_cleared() {
        let (h, u, v, mut rng) = setup();
        // Every node except the endpoints is faulty: any healthy redraw
        // target is impossible, and to be thorough some draws will hit
        // the intermediate-faulty `continue` path too.
        let faults: HashSet<NodeId> = h
            .all_nodes()
            .into_iter()
            .filter(|&w| w != u && w != v)
            .collect();
        let mut scratch = RouteScratch::new();
        let mut out = vec![u, v, u]; // stale garbage from a previous call
        assert!(!Strategy::Valiant.select_into(
            &h,
            u,
            v,
            &faults,
            &mut rng,
            &mut scratch,
            &mut out
        ));
        assert!(out.is_empty(), "failed selection must clear out");

        // Same property when a redraw finds a healthy intermediate but
        // the walk through it is blocked: only `w` (adjacent to neither
        // endpoint) is healthy, so any walk that *is* attempted leaks
        // into `out` under the old code. Enough calls that the fixed
        // seed is guaranteed to draw `w` at least once.
        let w = h.node(0b0101, 0b01).unwrap();
        let faults: HashSet<NodeId> = h
            .all_nodes()
            .into_iter()
            .filter(|&x| x != u && x != v && x != w)
            .collect();
        let mut attempted = false;
        for _ in 0..64 {
            let mut out = vec![u];
            let probe = rng.clone();
            assert!(!Strategy::Valiant.select_into(
                &h,
                u,
                v,
                &faults,
                &mut rng,
                &mut scratch,
                &mut out
            ));
            assert!(out.is_empty(), "blocked-walk failure must clear out");
            // Did this call actually draw the healthy intermediate?
            let mask = workloads::AddressSpace::address_mask(&h);
            let mut probe = probe;
            for _ in 0..8 {
                let cand = NodeId::from_raw(
                    ((probe.gen::<u64>() as u128) << 64 | probe.gen::<u64>() as u128) & mask,
                );
                attempted |= cand == w;
            }
        }
        assert!(attempted, "seed never exercised the blocked-walk path");
    }

    /// Regression: the single-pass FaultAdaptive selection must pick the
    /// same routes with the same RNG draw sequence as the two-pass
    /// (count, then re-filter + `nth`) form it replaced.
    #[test]
    fn fault_adaptive_single_pass_matches_two_pass_reference() {
        let (h, u, v, mut rng) = setup();
        let mut ref_rng = StdRng::seed_from_u64(1);
        let paths = h.disjoint_paths(u, v).unwrap();
        let mut scratch = RouteScratch::new();
        let mut out = Vec::new();
        // Sweep fault sets from empty to fully blocking.
        for blocked in 0..=paths.len() {
            let faults: HashSet<_> = paths[..blocked].iter().map(|p| p[1]).collect();
            for _ in 0..32 {
                // Reference: the historical double-pass selection.
                let alive = paths.iter().filter(|p| !path_blocked(p, &faults)).count();
                let expect = if alive == 0 {
                    None
                } else {
                    let i = ref_rng.gen_range(0..alive);
                    Some(
                        paths
                            .iter()
                            .filter(|p| !path_blocked(p, &faults))
                            .nth(i)
                            .unwrap()
                            .clone(),
                    )
                };
                let got = Strategy::FaultAdaptive
                    .select_into(&h, u, v, &faults, &mut rng, &mut scratch, &mut out)
                    .then(|| out.clone());
                assert_eq!(got, expect);
            }
            // RNG streams must stay in lockstep (same number of draws).
            assert_eq!(rng.gen::<u64>(), ref_rng.gen::<u64>());
        }
    }

    /// FaultFree sustains delivery where FaultAdaptive collapses: block
    /// the midpoint of every member of the fault-blind family. (Not the
    /// first hops — those are all of `u`'s neighbours, which would
    /// disconnect `u` outright.)
    #[test]
    fn fault_free_routes_where_fault_adaptive_fails() {
        let (h, u, v, mut rng) = setup();
        let paths = h.disjoint_paths(u, v).unwrap();
        let faults: HashSet<_> = paths.iter().map(|p| p[p.len() / 2]).collect();
        assert!(Strategy::FaultAdaptive
            .select(&h, u, v, &faults, &mut rng)
            .is_none());
        let p = Strategy::FaultFree
            .select(&h, u, v, &faults, &mut rng)
            .expect("avoiding construction routes around the blanket");
        assert_eq!(*p.first().unwrap(), u);
        assert_eq!(*p.last().unwrap(), v);
        assert!(!path_blocked(&p, &faults));
        for pair in p.windows(2) {
            assert!(crate::net::Network::is_edge(&h, pair[0], pair[1]));
        }
    }

    /// On a fault-oblivious network (the plain cube) FaultFree degrades
    /// to survivor filtering — same behaviour as FaultAdaptive.
    #[test]
    fn fault_free_default_filters_on_the_cube() {
        let q = crate::net::CubeNet::matching_hhc(2);
        let u = NodeId::from_raw(0);
        let v = NodeId::from_raw(63);
        let mut rng = StdRng::seed_from_u64(7);
        let d = crate::net::Network::disjoint_routes(&q, u, v);
        let faults: HashSet<_> = d[..3].iter().map(|p| p[1]).collect();
        let mut scratch = RouteScratch::new();
        for _ in 0..20 {
            let p = Strategy::FaultFree
                .select_with(&q, u, v, &faults, &mut rng, &mut scratch)
                .expect("three of six survivors remain");
            assert!(!path_blocked(&p, &faults));
            assert!(d.contains(&p), "default impl must return family members");
        }
    }
}
