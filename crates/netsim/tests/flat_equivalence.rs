//! Flat-core ≡ legacy-core equivalence, replication determinism, and
//! trace/stat agreement.
//!
//! The flat engine (`Simulator::run`) must be *byte-identical* to the
//! legacy `BTreeMap` engine (`Simulator::run_legacy`) — not merely
//! statistically close: same RNG draw order, same link service order,
//! same queue contents, hence equal `SimStats` including histograms and
//! time series. The proptest sweeps configurations across strategies,
//! patterns, switching disciplines, packet lengths, finite buffers,
//! faults and sampling; deterministic cases pin the larger topologies.

use hhc_core::{Hhc, NodeId};
use netsim::Strategy as RouteStrategy;
use netsim::{CacheConfig, CubeNet, SimConfig, Simulator, Switching};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use workloads::Pattern;

fn strategies() -> impl Strategy<Value = RouteStrategy> {
    (0u32..4).prop_map(|i| {
        [
            RouteStrategy::SinglePath,
            RouteStrategy::MultipathRandom,
            RouteStrategy::FaultAdaptive,
            RouteStrategy::Valiant,
        ][i as usize]
    })
}

fn patterns() -> impl Strategy<Value = Pattern> {
    (0u32..4).prop_map(|i| {
        [
            Pattern::UniformRandom,
            Pattern::BitComplement,
            Pattern::Transpose,
            Pattern::Hotspot { hot_fraction: 0.2 },
        ][i as usize]
    })
}

fn configs() -> impl Strategy<Value = SimConfig> {
    (
        10u64..120,
        0u64..300,
        0u64..1_000_000,
        1u64..4,
        // Switching bit, queue capacity (0 = unbounded), sampling bit
        // packed into one draw to stay within the 6-tuple limit.
        (0u64..2, 0u64..4, 0u64..2),
    )
        .prop_map(|(cycles, drain, seed, len, (sw, cap, sample))| SimConfig {
            cycles,
            drain_cycles: drain,
            inject_rate: 0.08,
            seed,
            packet_len: len,
            switching: if sw == 0 {
                Switching::StoreAndForward
            } else {
                Switching::CutThrough
            },
            queue_capacity: (cap > 0).then_some(cap),
            sample_every: sample * 7,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn flat_equals_legacy_on_hhc2(
        cfg in configs(),
        strategy in strategies(),
        pattern in patterns(),
        n_faults in 0usize..4,
        fault_seed in 0u64..1000,
    ) {
        let h = Hhc::new(2).unwrap();
        let faults: HashSet<NodeId> = workloads::random_fault_set(
            &h, n_faults, &[], &mut StdRng::seed_from_u64(fault_seed));
        let sim = Simulator::new(&h, pattern, strategy).with_faults(faults);
        prop_assert_eq!(sim.run(cfg), sim.run_legacy(cfg));
    }

    #[test]
    fn flat_equals_legacy_on_the_cube(
        cfg in configs(),
        strategy in strategies(),
        pattern in patterns(),
    ) {
        let q = CubeNet::matching_hhc(2);
        let sim = Simulator::new(&q, pattern, strategy);
        prop_assert_eq!(sim.run(cfg), sim.run_legacy(cfg));
    }

    #[test]
    fn run_many_equals_sequential_runs(
        seed in 0u64..1_000_000,
        n_runs in 0usize..5,
        strategy in strategies(),
    ) {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, strategy);
        let cfg = SimConfig {
            cycles: 60,
            drain_cycles: 600,
            inject_rate: 0.05,
            seed,
            ..SimConfig::default()
        };
        let merged = sim.run_many(cfg, n_runs);
        let mut expect = netsim::SimStats::default();
        for i in 0..n_runs as u64 {
            expect.merge(&sim.run(SimConfig { seed: seed.wrapping_add(i), ..cfg }));
        }
        prop_assert_eq!(merged, expect);
    }

    #[test]
    fn traced_stats_equal_untraced_stats(
        cfg in configs(),
        strategy in strategies(),
        pattern in patterns(),
    ) {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, pattern, strategy);
        let (stats, records) = sim.run_traced(cfg);
        prop_assert_eq!(&stats, &sim.run(cfg));
        prop_assert_eq!(records.len() as u64, stats.delivered);
    }
}

/// The larger topologies the proptest can't afford every case on,
/// pinned deterministically: HHC(3) (2048 nodes, the largest HHC the
/// 16-bit engine guard admits) and its matching cube Q_11.
#[test]
fn flat_equals_legacy_on_hhc3_and_q11() {
    let h = Hhc::new(3).unwrap();
    let cfg = SimConfig {
        cycles: 40,
        drain_cycles: 2000,
        inject_rate: 0.03,
        seed: 0x5EED,
        sample_every: 25,
        ..SimConfig::default()
    };
    for strategy in [RouteStrategy::SinglePath, RouteStrategy::MultipathRandom] {
        let sim = Simulator::new(&h, Pattern::UniformRandom, strategy);
        let flat = sim.run(cfg);
        assert!(flat.delivered > 0);
        assert_eq!(flat, sim.run_legacy(cfg), "HHC(3) diverged ({strategy:?})");
    }
    let q = CubeNet::matching_hhc(3);
    let sim = Simulator::new(&q, Pattern::UniformRandom, RouteStrategy::SinglePath);
    assert_eq!(sim.run(cfg), sim.run_legacy(cfg), "Q_11 diverged");
}

/// The backpressure deadlock is the most order-sensitive behaviour the
/// engine has (a buffer cycle wedges or not depending on exact service
/// order) — both cores must reproduce it identically.
#[test]
fn flat_equals_legacy_under_deadlock() {
    let h = Hhc::new(2).unwrap();
    let sim = Simulator::new(&h, Pattern::BitComplement, RouteStrategy::SinglePath);
    let cfg = SimConfig {
        cycles: 300,
        drain_cycles: 4000,
        inject_rate: 0.4,
        seed: 1212,
        queue_capacity: Some(1),
        ..SimConfig::default()
    };
    let flat = sim.run(cfg);
    assert!(
        flat.in_flight_at_end > 0,
        "expected the wedged buffer cycle"
    );
    assert_eq!(flat, sim.run_legacy(cfg));
}

/// Route caching must stay behaviour-invisible in the flat core too.
#[test]
fn flat_cache_off_equals_cache_on_modulo_counters() {
    let h = Hhc::new(2).unwrap();
    let cfg = SimConfig {
        cycles: 120,
        drain_cycles: 2000,
        inject_rate: 0.1,
        seed: 77,
        ..SimConfig::default()
    };
    let cached =
        Simulator::new(&h, Pattern::BitComplement, RouteStrategy::MultipathRandom).run(cfg);
    let uncached = Simulator::new(&h, Pattern::BitComplement, RouteStrategy::MultipathRandom)
        .with_route_cache(CacheConfig::disabled())
        .run(cfg);
    let mut masked = cached.clone();
    masked.route_family_hits = uncached.route_family_hits;
    assert_eq!(masked, uncached);
}

/// run_many must not depend on the rayon worker count.
#[test]
fn run_many_is_thread_count_invariant() {
    let h = Hhc::new(2).unwrap();
    let sim = Simulator::new(&h, Pattern::UniformRandom, RouteStrategy::MultipathRandom);
    let cfg = SimConfig {
        cycles: 50,
        drain_cycles: 500,
        inject_rate: 0.05,
        seed: 9,
        ..SimConfig::default()
    };
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let one = sim.run_many(cfg, 6);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four = sim.run_many(cfg, 6);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(one, four);
}
