//! Engine-variant equivalence, replication determinism, and trace/stat
//! agreement.
//!
//! Every engine variant ([`EngineConfig`]: lazy/eager link store ×
//! hybrid/full link fidelity) must produce *byte-identical* [`SimStats`]
//! — not merely statistically close: same RNG draw order, same link
//! service order, same landing order, hence equal counters, histograms
//! and time series. The proptests sweep configurations across
//! strategies, patterns, switching disciplines, packet lengths, finite
//! buffers, faults and sampling; recorded golden pins cover the larger
//! topologies (HHC(3), Q_11) and the order-sensitive deadlock case that
//! the retired legacy-oracle suite used to cross-check live.
//!
//! The only permitted difference between variants is
//! `peak_links_materialised` (the eager store materialises every link up
//! front), masked where the store mode differs.

use hhc_core::{Hhc, NodeId};
use netsim::Strategy as RouteStrategy;
use netsim::{
    CacheConfig, CubeNet, EngineConfig, Fidelity, LinkStoreMode, SimConfig, SimStats, Simulator,
    Switching,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use workloads::Pattern;

fn strategies() -> impl Strategy<Value = RouteStrategy> {
    (0u32..4).prop_map(|i| {
        [
            RouteStrategy::SinglePath,
            RouteStrategy::MultipathRandom,
            RouteStrategy::FaultAdaptive,
            RouteStrategy::Valiant,
        ][i as usize]
    })
}

fn patterns() -> impl Strategy<Value = Pattern> {
    (0u32..4).prop_map(|i| {
        [
            Pattern::UniformRandom,
            Pattern::BitComplement,
            Pattern::Transpose,
            Pattern::Hotspot { hot_fraction: 0.2 },
        ][i as usize]
    })
}

fn configs() -> impl Strategy<Value = SimConfig> {
    (
        10u64..120,
        0u64..300,
        0u64..1_000_000,
        1u64..4,
        // Switching bit, queue capacity (0 = unbounded), sampling bit
        // packed into one draw to stay within the 6-tuple limit.
        (0u64..2, 0u64..4, 0u64..2),
    )
        .prop_map(|(cycles, drain, seed, len, (sw, cap, sample))| SimConfig {
            cycles,
            drain_cycles: drain,
            inject_rate: 0.08,
            seed,
            packet_len: len,
            switching: if sw == 0 {
                Switching::StoreAndForward
            } else {
                Switching::CutThrough
            },
            queue_capacity: (cap > 0).then_some(cap),
            sample_every: sample * 7,
        })
}

fn engine(store: LinkStoreMode, fidelity: Fidelity) -> EngineConfig {
    EngineConfig { store, fidelity }
}

/// Equality modulo the one legitimately store-dependent field.
fn mask_materialised(mut s: SimStats, like: &SimStats) -> SimStats {
    s.peak_links_materialised = like.peak_links_materialised;
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hybrid fidelity is byte-exact against full queueing (same store,
    /// so nothing is masked), across faults, finite buffers and
    /// sampling (where hybrid silently falls back to full).
    #[test]
    fn hybrid_equals_full_on_hhc2(
        cfg in configs(),
        strategy in strategies(),
        pattern in patterns(),
        n_faults in 0usize..4,
        fault_seed in 0u64..1000,
    ) {
        let h = Hhc::new(2).unwrap();
        let faults: HashSet<NodeId> = workloads::random_fault_set(
            &h, n_faults, &[], &mut StdRng::seed_from_u64(fault_seed));
        let hybrid = Simulator::new(&h, pattern, strategy)
            .with_faults(faults.clone())
            .with_engine(engine(LinkStoreMode::Lazy, Fidelity::Hybrid))
            .run(cfg);
        let full = Simulator::new(&h, pattern, strategy)
            .with_faults(faults)
            .with_engine(engine(LinkStoreMode::Lazy, Fidelity::Full))
            .run(cfg);
        prop_assert!(hybrid.peak_links_materialised <= hybrid.links_total);
        prop_assert_eq!(hybrid, full);
    }

    /// The lazy link store is byte-exact against the eager dense layout
    /// (same fidelity; only `peak_links_materialised` may differ).
    #[test]
    fn lazy_equals_eager_on_hhc2(
        cfg in configs(),
        strategy in strategies(),
        pattern in patterns(),
        n_faults in 0usize..4,
        fault_seed in 0u64..1000,
    ) {
        let h = Hhc::new(2).unwrap();
        let faults: HashSet<NodeId> = workloads::random_fault_set(
            &h, n_faults, &[], &mut StdRng::seed_from_u64(fault_seed));
        let lazy = Simulator::new(&h, pattern, strategy)
            .with_faults(faults.clone())
            .with_engine(engine(LinkStoreMode::Lazy, Fidelity::Full))
            .run(cfg);
        let eager = Simulator::new(&h, pattern, strategy)
            .with_faults(faults)
            .with_engine(engine(LinkStoreMode::Eager, Fidelity::Full))
            .run(cfg);
        prop_assert!(lazy.peak_links_materialised <= lazy.links_total);
        prop_assert_eq!(eager.peak_links_materialised, eager.links_total);
        prop_assert_eq!(mask_materialised(lazy, &eager), eager);
    }

    /// The default engine (lazy + hybrid) against the reference engine
    /// (eager + full) on the matching cube — both dimensions at once,
    /// on the other network implementation.
    #[test]
    fn default_engine_equals_reference_on_the_cube(
        cfg in configs(),
        strategy in strategies(),
        pattern in patterns(),
    ) {
        let q = CubeNet::matching_hhc(2);
        let fast = Simulator::new(&q, pattern, strategy).run(cfg);
        let reference = Simulator::new(&q, pattern, strategy)
            .with_engine(EngineConfig::reference())
            .run(cfg);
        prop_assert_eq!(mask_materialised(fast, &reference), reference);
    }

    #[test]
    fn run_many_equals_sequential_runs(
        seed in 0u64..1_000_000,
        n_runs in 0usize..5,
        strategy in strategies(),
    ) {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, Pattern::UniformRandom, strategy);
        let cfg = SimConfig {
            cycles: 60,
            drain_cycles: 600,
            inject_rate: 0.05,
            seed,
            ..SimConfig::default()
        };
        let merged = sim.run_many(cfg, n_runs);
        let mut expect = netsim::SimStats::default();
        for i in 0..n_runs as u64 {
            expect.merge(&sim.run(SimConfig { seed: seed.wrapping_add(i), ..cfg }));
        }
        prop_assert_eq!(merged, expect);
    }

    #[test]
    fn traced_stats_equal_untraced_stats(
        cfg in configs(),
        strategy in strategies(),
        pattern in patterns(),
    ) {
        let h = Hhc::new(2).unwrap();
        let sim = Simulator::new(&h, pattern, strategy);
        let (stats, records) = sim.run_traced(cfg);
        prop_assert_eq!(&stats, &sim.run(cfg));
        prop_assert_eq!(records.len() as u64, stats.delivered);
    }
}

/// FNV-1a over the serialised stats: one number pinning every counter,
/// derived rate, histogram bucket and sample.
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// One golden pin: `(injected, delivered, latency_sum,
/// link_transmissions, fnv64(to_json))`.
type Pin = (u64, u64, u64, u64, u64);

/// One golden pin: the headline counters plus the serialisation hash.
fn pin_of(stats: &SimStats) -> Pin {
    (
        stats.injected,
        stats.delivered,
        stats.latency_sum,
        stats.link_transmissions,
        fnv64(&stats.to_json(0)),
    )
}

/// Checks a recorded pin, or prints the value to record when
/// `RECORD_GOLDENS` is set (run `RECORD_GOLDENS=1 cargo test -p netsim
/// --test flat_equivalence -- --nocapture golden` after any deliberate
/// engine-stream change, then paste the printed tuples).
///
/// The geometric arrival sampler takes `f64::ln`, so pins assume the
/// platform's libm rounding; re-record if a port ever flips a gap.
fn check_pin(name: &str, stats: &SimStats, expect: Pin) {
    let got = pin_of(stats);
    if std::env::var("RECORD_GOLDENS").is_ok() {
        println!("{name}: {got:?}");
        return;
    }
    assert_eq!(got, expect, "{name}: golden SimStats pin diverged");
}

/// The larger topologies the proptest can't afford every case on, pinned
/// with recorded goldens: HHC(3) (2048 nodes) and its matching cube
/// Q_11. Each case additionally cross-checks the default engine against
/// the reference engine live, so the pins guard the *stream* (arrival
/// sampler, service order) while the cross-check guards variant
/// equivalence at a scale the proptests never reach.
#[test]
fn golden_stats_on_hhc3_and_q11() {
    let h = Hhc::new(3).unwrap();
    let cfg = SimConfig {
        cycles: 40,
        drain_cycles: 2000,
        inject_rate: 0.03,
        seed: 0x5EED,
        sample_every: 25,
        ..SimConfig::default()
    };
    let pins: [(RouteStrategy, Pin); 2] = [
        (
            RouteStrategy::SinglePath,
            (2435, 2435, 26093, 25529, 2667493880020430803),
        ),
        (
            RouteStrategy::MultipathRandom,
            (2514, 2514, 31840, 30996, 7056193090938455049),
        ),
    ];
    for (strategy, pin) in pins {
        let sim = Simulator::new(&h, Pattern::UniformRandom, strategy);
        let stats = sim.run(cfg);
        assert!(stats.delivered > 0);
        let reference = Simulator::new(&h, Pattern::UniformRandom, strategy)
            .with_engine(EngineConfig::reference())
            .run(cfg);
        assert_eq!(
            mask_materialised(stats.clone(), &reference),
            reference,
            "HHC(3) engine variants diverged ({strategy:?})"
        );
        check_pin(&format!("hhc3_{strategy:?}"), &stats, pin);
    }

    // Q_11, no sampling: the hybrid fast path stays engaged end-to-end.
    let q = CubeNet::matching_hhc(3);
    let qcfg = SimConfig {
        sample_every: 0,
        ..cfg
    };
    let sim = Simulator::new(&q, Pattern::UniformRandom, RouteStrategy::SinglePath);
    let stats = sim.run(qcfg);
    let reference = Simulator::new(&q, Pattern::UniformRandom, RouteStrategy::SinglePath)
        .with_engine(EngineConfig::reference())
        .run(qcfg);
    assert_eq!(
        mask_materialised(stats.clone(), &reference),
        reference,
        "Q_11 engine variants diverged"
    );
    check_pin(
        "q11_SinglePath",
        &stats,
        (2435, 2435, 13342, 13281, 13258767428450922022),
    );
}

/// The backpressure deadlock is the most order-sensitive behaviour the
/// engine has (a buffer cycle wedges or not depending on exact service
/// order). The wedge must reproduce, and the lazy store must agree with
/// the eager store byte-for-byte on it (capacity forces full fidelity
/// in both).
#[test]
fn golden_deadlock_under_backpressure() {
    let h = Hhc::new(2).unwrap();
    let cfg = SimConfig {
        cycles: 300,
        drain_cycles: 4000,
        inject_rate: 0.4,
        seed: 1212,
        queue_capacity: Some(1),
        ..SimConfig::default()
    };
    let stats = Simulator::new(&h, Pattern::BitComplement, RouteStrategy::SinglePath).run(cfg);
    assert!(
        stats.in_flight_at_end > 0,
        "expected the wedged buffer cycle"
    );
    let eager = Simulator::new(&h, Pattern::BitComplement, RouteStrategy::SinglePath)
        .with_engine(EngineConfig::reference())
        .run(cfg);
    assert_eq!(mask_materialised(stats.clone(), &eager), eager);
    check_pin("deadlock", &stats, (146, 18, 233, 406, 3134578593660008937));
}

/// The lazy store must allocate queue state for exactly the links the
/// run's traffic crossed — counted against the union of delivered
/// routes' directed links after a fully drained multi-flow run.
#[test]
fn lazy_store_materialises_exactly_the_traversed_links() {
    let h = Hhc::new(2).unwrap();
    let sim = Simulator::new(&h, Pattern::UniformRandom, RouteStrategy::SinglePath);
    let cfg = SimConfig {
        cycles: 3,
        drain_cycles: 2000,
        inject_rate: 0.05,
        seed: 42,
        ..SimConfig::default()
    };
    let (stats, records) = sim.run_traced(cfg);
    assert_eq!(stats.delivered, stats.injected, "must drain completely");
    assert!(stats.delivered >= 2, "need at least two flows");
    let mut traversed: HashSet<(u128, u128)> = HashSet::new();
    for r in &records {
        for w in r.route.windows(2) {
            traversed.insert((w[0].raw(), w[1].raw()));
        }
    }
    assert_eq!(
        stats.peak_links_materialised,
        traversed.len() as u64,
        "lazy store materialised links no packet crossed"
    );
    assert!(stats.peak_links_materialised > 0);
    assert!(
        stats.peak_links_materialised < stats.links_total,
        "a light run must not touch every link"
    );
}

/// Route caching must stay behaviour-invisible in the flat core too.
#[test]
fn flat_cache_off_equals_cache_on_modulo_counters() {
    let h = Hhc::new(2).unwrap();
    let cfg = SimConfig {
        cycles: 120,
        drain_cycles: 2000,
        inject_rate: 0.1,
        seed: 77,
        ..SimConfig::default()
    };
    let cached =
        Simulator::new(&h, Pattern::BitComplement, RouteStrategy::MultipathRandom).run(cfg);
    let uncached = Simulator::new(&h, Pattern::BitComplement, RouteStrategy::MultipathRandom)
        .with_route_cache(CacheConfig::disabled())
        .run(cfg);
    let mut masked = cached.clone();
    masked.route_family_hits = uncached.route_family_hits;
    assert_eq!(masked, uncached);
}

/// run_many must not depend on the rayon worker count.
#[test]
fn run_many_is_thread_count_invariant() {
    let h = Hhc::new(2).unwrap();
    let sim = Simulator::new(&h, Pattern::UniformRandom, RouteStrategy::MultipathRandom);
    let cfg = SimConfig {
        cycles: 50,
        drain_cycles: 500,
        inject_rate: 0.05,
        seed: 9,
        ..SimConfig::default()
    };
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let one = sim.run_many(cfg, 6);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let four = sim.run_many(cfg, 6);
    std::env::remove_var("RAYON_NUM_THREADS");
    assert_eq!(one, four);
}
