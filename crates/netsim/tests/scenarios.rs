//! Scenario-layer integration tests over the checked-in example
//! scenarios (`examples/scenarios/`) and their recorded golden traces
//! (`results/scenarios/`).
//!
//! The contract under test, end to end:
//! * every committed example parses and validates;
//! * replaying a recorded scenario is byte-identical (the CI smoke
//!   job runs the same check through `hhc sim --replay`);
//! * the f4 scenario compiles to exactly the driver's parameter table,
//!   and its cells reproduce hand-rolled `Simulator::run_many` calls;
//! * the shrinker reduces the seeded failing scenario to a strictly
//!   smaller spec that still fails.
//!
//! Re-record goldens after an intentional engine change with:
//! `cargo run --release -p hhc-cli --bin hhc -- sim --scenario <file> --record`

use netsim::scenario::{compile, execute, render, shrink, Scenario};
use std::path::{Path, PathBuf};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn example(name: &str) -> Scenario {
    let path = repo_path(&format!("examples/scenarios/{name}.toml"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
    Scenario::from_toml(&src).unwrap_or_else(|e| panic!("{name}.toml: {e}"))
}

fn golden(name: &str) -> String {
    let path = repo_path(&format!("results/scenarios/{name}.trace"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path:?}: {e}"))
}

#[test]
fn every_committed_example_parses_and_validates() {
    let dir = repo_path("examples/scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("read {dir:?}: {e}")) {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        seen += 1;
        let src = std::fs::read_to_string(&path).unwrap();
        let s = Scenario::from_toml(&src)
            .unwrap_or_else(|e| panic!("example {path:?} failed to validate: {e}"));
        // The canonical form round-trips: reformatting an example never
        // changes its meaning or its trace's spec hash.
        assert_eq!(
            s,
            Scenario::from_toml(&s.to_toml()).unwrap(),
            "canonical round-trip failed for {path:?}"
        );
    }
    assert!(
        seen >= 3,
        "expected at least 3 example scenarios, found {seen}"
    );
}

/// Byte-identical replay of the cheap committed scenarios. (The f4
/// sweep is replayed in release mode by the CI scenarios job — 20
/// replications of 20 cells are too slow for a debug test.)
#[test]
fn recorded_scenarios_replay_byte_identically() {
    for name in ["deadlock_tiny", "churn_recovery", "f3c_adversarial"] {
        let s = example(name);
        let current = render(&s, &execute(&s));
        let recorded = golden(name);
        if let Some(diff) = netsim::scenario::diff_lines(&current, &recorded) {
            panic!("scenario {name} diverged from its recorded trace:\n{diff}");
        }
    }
}

/// The f4 scenario compiles to exactly the driver's parameter table:
/// same cells, same order, same seeds, rates, cycle counts and
/// replication count as `experiments -- f4`.
#[test]
fn f4_scenario_compiles_to_the_driver_parameter_table() {
    let s = example("f4_load_sweep");
    let cells = compile(&s);
    // Driver order: m ascending, rate ascending, single then multipath.
    let m2_rates = [0.02, 0.05, 0.10, 0.20, 0.30, 0.40];
    let m3_rates = [0.02, 0.05, 0.10, 0.20];
    let mut expected: Vec<(u32, f64, u64)> = Vec::new();
    for &r in &m2_rates {
        expected.push((2, r, 600));
        expected.push((2, r, 600));
    }
    for &r in &m3_rates {
        expected.push((3, r, 200));
        expected.push((3, r, 200));
    }
    assert_eq!(cells.len(), expected.len());
    for (i, (cell, &(m, rate, cycles))) in cells.iter().zip(&expected).enumerate() {
        assert_eq!(
            cell.topology,
            netsim::scenario::Topology::Hhc { m },
            "cell {i}"
        );
        assert_eq!(cell.cfg.inject_rate, rate, "cell {i}");
        assert_eq!(cell.cfg.cycles, cycles, "cell {i}");
        assert_eq!(cell.cfg.seed, 0xF4F4, "cell {i}");
        assert_eq!(cell.cfg.drain_cycles, 20_000, "cell {i}");
        assert_eq!(cell.cfg.sample_every, 100, "cell {i}");
        assert_eq!(cell.replications, 20, "cell {i}");
        let want = if i % 2 == 0 {
            netsim::Strategy::SinglePath
        } else {
            netsim::Strategy::MultipathRandom
        };
        assert_eq!(cell.strategy, want, "cell {i}");
    }
}

/// One f4 cell, end to end: the scenario layer's execution of the
/// cheapest cell equals a hand-rolled `Simulator::run_many` with the
/// driver's exact parameters.
#[test]
fn f4_cheapest_cell_equals_a_hand_rolled_run() {
    let s = example("f4_load_sweep");
    let cells = compile(&s);
    let via_scenario = netsim::scenario::run_cell(&cells[0]);

    let h = hhc_core::Hhc::new(2).unwrap();
    let direct = netsim::Simulator::new(
        &h,
        workloads::Pattern::UniformRandom,
        netsim::Strategy::SinglePath,
    )
    .run_many(
        netsim::SimConfig {
            cycles: 600,
            drain_cycles: 20_000,
            inject_rate: 0.02,
            seed: 0xF4F4,
            sample_every: 100,
            ..netsim::SimConfig::default()
        },
        20,
    );
    assert_eq!(via_scenario, direct);
    assert_eq!(direct.delivered, direct.injected, "driver's own invariant");
}

/// The f3c scenario runs the same engine as the driver: executing a
/// `fault-analysis` scenario yields exactly `constructive_sweep` with
/// the same parameters.
#[test]
fn analysis_scenario_equals_the_engine_call() {
    let src = "name = \"eq\"\nkind = \"fault-analysis\"\nseed = 0xF3C1\n\
               [topology]\nkind = \"hhc\"\nm = 2\n\
               [analysis]\ntrials = 30\nplacement = \"adversarial\"\nfault_counts = [0, 2, 3]\n";
    let s = Scenario::from_toml(src).unwrap();
    let report = execute(&s);
    let h = hhc_core::Hhc::new(2).unwrap();
    let direct = netsim::scenario::constructive_sweep(
        &h,
        netsim::scenario::Placement::Adversarial,
        &[0, 2, 3],
        30,
        0xF3C1,
    );
    assert_eq!(report.rows, direct);
}

/// The seeded failing scenario shrinks to a strictly smaller spec that
/// still fails — and the canonical TOML of the result is itself a
/// valid, still-failing scenario (what `hhc sim --shrink` prints).
#[test]
fn shrinker_reduces_deadlock_tiny_and_stays_failing() {
    let orig = example("deadlock_tiny");
    let mut failing = |s: &Scenario| !execute(s).passes();
    assert!(failing(&orig), "the committed reproducer must fail");
    let minimal = shrink(&orig, &mut failing);
    assert!(
        netsim::scenario::shrink::size(&minimal) < netsim::scenario::shrink::size(&orig),
        "shrink must make strict progress on the committed reproducer"
    );
    assert!(failing(&minimal), "the minimum must still fail");
    let reparsed = Scenario::from_toml(&minimal.to_toml()).unwrap();
    assert_eq!(reparsed, minimal);
    assert!(failing(&reparsed), "the printed reproducer must still fail");
}
