//! A minimal, dependency-free parser for the TOML subset used by
//! scenario files (see `SCENARIOS.md` at the repository root).
//!
//! The build environment has no registry access, so the suite vendors
//! what it needs; a full TOML implementation would be overkill for flat
//! config files. The subset:
//!
//! * `[table]` and nested `[table.sub]` headers;
//! * `[[array.of.tables]]` headers (repeatable sections, in order);
//! * `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`);
//! * values: basic `"strings"` (with `\"` `\\` `\n` `\t` escapes),
//!   integers (decimal with `_` separators, or `0x` hex — seeds are
//!   conventionally written in hex here), floats, booleans, and
//!   homogeneous-or-not arrays `[v, v, ...]` which may span lines;
//! * `#` comments and blank lines.
//!
//! Not supported (rejected with a typed, line-numbered
//! [`ParseError`]): dotted/quoted keys, inline tables, multi-line or
//! literal strings, datetimes. Scenario files never need them.
//!
//! ```
//! let doc = scenario_spec::parse(r#"
//! name = "demo"
//! seed = 0xF4F4
//! [traffic]
//! rate = 0.05
//! [[faults.events]]
//! cycle = 10
//! "#).unwrap();
//! assert_eq!(doc.root.get_str("name").unwrap(), "demo");
//! assert_eq!(doc.root.get_int("seed").unwrap(), 0xF4F4);
//! let traffic = doc.root.get_table("traffic").unwrap();
//! assert_eq!(traffic.get_float("rate").unwrap(), 0.05);
//! assert_eq!(doc.root.get_table("faults").unwrap().get_tables("events").unwrap().len(), 1);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string, escapes resolved.
    String(String),
    /// A decimal or `0x`-hex integer.
    Integer(i64),
    /// A float (any number containing `.`, `e`, or `E`).
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `[v, v, ...]`, possibly spanning lines.
    Array(Vec<Value>),
}

impl Value {
    /// The value as a float, coercing integers (TOML writers routinely
    /// write `rate = 1` for `1.0`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Integer(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The value as an integer (no float coercion: `0.5` is not a count).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::String(_) => "string",
            Value::Integer(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One entry in a [`Table`]: a scalar/array, a sub-table, or a
/// repeatable `[[section]]` list.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `key = value`.
    Value(Value),
    /// `[table]`.
    Table(Table),
    /// `[[table]]`, in file order.
    ArrayOfTables(Vec<Table>),
}

/// An ordered key → [`Item`] map (BTreeMap: deterministic iteration).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    entries: BTreeMap<String, Item>,
}

/// A parsed scenario document: the root [`Table`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    /// Top-level keys and sections.
    pub root: Table,
}

/// What went wrong, without position (see [`ParseError`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ErrorKind {
    /// A line that is neither blank, a comment, a header, nor `key = value`.
    ExpectedKeyValue,
    /// A `[header]` or `[[header]]` line that does not scan.
    BadHeader(String),
    /// A key assigned twice, or a table redefined as a value (etc.).
    DuplicateKey(String),
    /// A `[a.b]` path where `a` is already a scalar.
    NotATable(String),
    /// A string literal with no closing quote.
    UnterminatedString,
    /// An array with no closing `]` before end of input.
    UnterminatedArray,
    /// An unknown escape such as `\q`.
    BadEscape(char),
    /// A token that is not a recognised value.
    BadValue(String),
    /// Text after a complete value or header.
    TrailingGarbage(String),
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::ExpectedKeyValue => write!(f, "expected `key = value`"),
            ErrorKind::BadHeader(h) => write!(f, "malformed section header `{h}`"),
            ErrorKind::DuplicateKey(k) => write!(f, "duplicate key `{k}`"),
            ErrorKind::NotATable(k) => write!(f, "`{k}` is not a table"),
            ErrorKind::UnterminatedString => write!(f, "unterminated string"),
            ErrorKind::UnterminatedArray => write!(f, "unterminated array"),
            ErrorKind::BadEscape(c) => write!(f, "unknown escape `\\{c}`"),
            ErrorKind::BadValue(v) => write!(f, "unrecognised value `{v}`"),
            ErrorKind::TrailingGarbage(t) => write!(f, "trailing characters `{t}`"),
        }
    }
}

/// A parse failure at a 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub kind: ErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for ParseError {}

/// A typed-lookup failure: wrong type or missing key, reported with the
/// full dotted path so scenario validation errors read well.
#[derive(Debug, Clone, PartialEq)]
pub enum LookupError {
    /// The key is absent.
    Missing(String),
    /// The key exists with a different type.
    WrongType {
        /// Dotted path of the offending key.
        key: String,
        /// Type the caller asked for.
        expected: &'static str,
        /// Type actually present.
        found: &'static str,
    },
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LookupError::Missing(k) => write!(f, "missing key `{k}`"),
            LookupError::WrongType {
                key,
                expected,
                found,
            } => write!(f, "`{key}` should be a {expected}, found {found}"),
        }
    }
}

impl std::error::Error for LookupError {}

impl Table {
    /// Raw item lookup.
    pub fn get(&self, key: &str) -> Option<&Item> {
        self.entries.get(key)
    }

    /// Scalar/array lookup (`None` for tables).
    pub fn get_value(&self, key: &str) -> Option<&Value> {
        match self.entries.get(key) {
            Some(Item::Value(v)) => Some(v),
            _ => None,
        }
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Item)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Keys present in this table, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn typed<'a, T>(
        &'a self,
        key: &str,
        expected: &'static str,
        cast: impl Fn(&'a Value) -> Option<T>,
    ) -> Result<T, LookupError> {
        match self.entries.get(key) {
            None => Err(LookupError::Missing(key.to_string())),
            Some(Item::Value(v)) => cast(v).ok_or(LookupError::WrongType {
                key: key.to_string(),
                expected,
                found: v.type_name(),
            }),
            Some(Item::Table(_)) => Err(LookupError::WrongType {
                key: key.to_string(),
                expected,
                found: "table",
            }),
            Some(Item::ArrayOfTables(_)) => Err(LookupError::WrongType {
                key: key.to_string(),
                expected,
                found: "array of tables",
            }),
        }
    }

    /// `key` as a string.
    pub fn get_str(&self, key: &str) -> Result<&str, LookupError> {
        self.typed(key, "string", Value::as_str)
    }

    /// `key` as an integer.
    pub fn get_int(&self, key: &str) -> Result<i64, LookupError> {
        self.typed(key, "integer", Value::as_i64)
    }

    /// `key` as a float (integers coerce).
    pub fn get_float(&self, key: &str) -> Result<f64, LookupError> {
        self.typed(key, "number", Value::as_f64)
    }

    /// `key` as a bool.
    pub fn get_bool(&self, key: &str) -> Result<bool, LookupError> {
        self.typed(key, "boolean", Value::as_bool)
    }

    /// `key` as an array of values.
    pub fn get_array(&self, key: &str) -> Result<&[Value], LookupError> {
        self.typed(key, "array", Value::as_array)
    }

    /// `key` as a sub-table.
    pub fn get_table(&self, key: &str) -> Result<&Table, LookupError> {
        match self.entries.get(key) {
            None => Err(LookupError::Missing(key.to_string())),
            Some(Item::Table(t)) => Ok(t),
            Some(item) => Err(LookupError::WrongType {
                key: key.to_string(),
                expected: "table",
                found: match item {
                    Item::Value(v) => v.type_name(),
                    Item::ArrayOfTables(_) => "array of tables",
                    Item::Table(_) => unreachable!(),
                },
            }),
        }
    }

    /// `key` as an `[[array.of.tables]]` list.
    pub fn get_tables(&self, key: &str) -> Result<&[Table], LookupError> {
        match self.entries.get(key) {
            None => Err(LookupError::Missing(key.to_string())),
            Some(Item::ArrayOfTables(ts)) => Ok(ts),
            Some(item) => Err(LookupError::WrongType {
                key: key.to_string(),
                expected: "array of tables",
                found: match item {
                    Item::Value(v) => v.type_name(),
                    Item::Table(_) => "table",
                    Item::ArrayOfTables(_) => unreachable!(),
                },
            }),
        }
    }
}

/// Parse a scenario document from TOML-subset source.
pub fn parse(src: &str) -> Result<Document, ParseError> {
    Parser::new(src).run()
}

struct Parser<'a> {
    lines: Vec<&'a str>,
    /// Index into `lines` (0-based; reported errors are 1-based).
    pos: usize,
    doc: Document,
    /// Path of the section the cursor is inside (empty = root).
    current: Vec<String>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            lines: src.lines().collect(),
            pos: 0,
            doc: Document::default(),
            current: Vec::new(),
        }
    }

    fn err(&self, kind: ErrorKind) -> ParseError {
        ParseError {
            line: self.pos + 1,
            kind,
        }
    }

    fn run(mut self) -> Result<Document, ParseError> {
        while self.pos < self.lines.len() {
            let line = strip_comment(self.lines[self.pos]);
            let line = line.trim();
            if line.is_empty() {
                self.pos += 1;
                continue;
            }
            if let Some(rest) = line.strip_prefix("[[") {
                let inner = rest
                    .strip_suffix("]]")
                    .ok_or_else(|| self.err(ErrorKind::BadHeader(line.to_string())))?;
                let path = self.parse_path(inner)?;
                self.open_array_of_tables(&path)?;
                self.current = path;
            } else if let Some(rest) = line.strip_prefix('[') {
                let inner = rest
                    .strip_suffix(']')
                    .ok_or_else(|| self.err(ErrorKind::BadHeader(line.to_string())))?;
                let path = self.parse_path(inner)?;
                self.open_table(&path)?;
                self.current = path;
            } else {
                self.parse_key_value(line)?;
            }
            self.pos += 1;
        }
        Ok(self.doc)
    }

    fn parse_path(&self, inner: &str) -> Result<Vec<String>, ParseError> {
        let inner = inner.trim();
        if inner.is_empty() {
            return Err(self.err(ErrorKind::BadHeader(format!("[{inner}]"))));
        }
        inner
            .split('.')
            .map(|part| {
                let part = part.trim();
                if part.is_empty() || !part.chars().all(is_bare_key_char) {
                    Err(self.err(ErrorKind::BadHeader(inner.to_string())))
                } else {
                    Ok(part.to_string())
                }
            })
            .collect()
    }

    /// Navigate to `path`, creating intermediate tables; register the
    /// final segment as a plain `[table]`.
    fn open_table(&mut self, path: &[String]) -> Result<(), ParseError> {
        let line = self.pos + 1;
        let mut cursor = &mut self.doc.root;
        for (i, seg) in path.iter().enumerate() {
            let last = i + 1 == path.len();
            let entry = cursor
                .entries
                .entry(seg.clone())
                .or_insert_with(|| Item::Table(Table::default()));
            cursor = match entry {
                Item::Table(t) => t,
                Item::ArrayOfTables(ts) => ts
                    .last_mut()
                    .expect("array-of-tables sections are never empty"),
                Item::Value(_) => {
                    return Err(ParseError {
                        line,
                        kind: if last {
                            ErrorKind::DuplicateKey(seg.clone())
                        } else {
                            ErrorKind::NotATable(seg.clone())
                        },
                    })
                }
            };
        }
        Ok(())
    }

    /// Navigate to `path`'s parent and push a fresh table onto the
    /// `[[array-of-tables]]` named by the last segment.
    fn open_array_of_tables(&mut self, path: &[String]) -> Result<(), ParseError> {
        let line = self.pos + 1;
        let (last, parents) = path.split_last().expect("parse_path rejects empty paths");
        let mut cursor = &mut self.doc.root;
        for seg in parents {
            let entry = cursor
                .entries
                .entry(seg.clone())
                .or_insert_with(|| Item::Table(Table::default()));
            cursor = match entry {
                Item::Table(t) => t,
                Item::ArrayOfTables(ts) => ts
                    .last_mut()
                    .expect("array-of-tables sections are never empty"),
                Item::Value(_) => {
                    return Err(ParseError {
                        line,
                        kind: ErrorKind::NotATable(seg.clone()),
                    })
                }
            };
        }
        match cursor
            .entries
            .entry(last.clone())
            .or_insert_with(|| Item::ArrayOfTables(Vec::new()))
        {
            Item::ArrayOfTables(ts) => {
                ts.push(Table::default());
                Ok(())
            }
            _ => Err(ParseError {
                line,
                kind: ErrorKind::DuplicateKey(last.clone()),
            }),
        }
    }

    fn parse_key_value(&mut self, line: &str) -> Result<(), ParseError> {
        let eq = line
            .find('=')
            .ok_or_else(|| self.err(ErrorKind::ExpectedKeyValue))?;
        let key = line[..eq].trim();
        if key.is_empty() || !key.chars().all(is_bare_key_char) {
            return Err(self.err(ErrorKind::ExpectedKeyValue));
        }
        let value_src = line[eq + 1..].trim().to_string();
        let value = self.parse_value(&value_src)?;
        // Re-borrow the section after value parsing (which may advance
        // `pos` over a multi-line array).
        let line_no = self.pos + 1;
        let current = self.current.clone();
        let mut cursor = &mut self.doc.root;
        for seg in &current {
            cursor = match cursor.entries.get_mut(seg) {
                Some(Item::Table(t)) => t,
                Some(Item::ArrayOfTables(ts)) => ts
                    .last_mut()
                    .expect("array-of-tables sections are never empty"),
                _ => unreachable!("section headers always create tables"),
            };
        }
        if cursor.entries.contains_key(key) {
            return Err(ParseError {
                line: line_no,
                kind: ErrorKind::DuplicateKey(key.to_string()),
            });
        }
        cursor.entries.insert(key.to_string(), Item::Value(value));
        Ok(())
    }

    /// Parse one value. For arrays, consumes continuation lines (the
    /// `pos` cursor is left on the last consumed line).
    fn parse_value(&mut self, src: &str) -> Result<Value, ParseError> {
        if src.starts_with('[') {
            // Gather lines until the bracket depth (outside strings)
            // returns to zero.
            let mut buf = src.to_string();
            while bracket_depth(&buf).ok_or_else(|| self.err(ErrorKind::UnterminatedString))? > 0 {
                self.pos += 1;
                if self.pos >= self.lines.len() {
                    self.pos -= 1;
                    return Err(self.err(ErrorKind::UnterminatedArray));
                }
                buf.push(' ');
                buf.push_str(strip_comment(self.lines[self.pos]).trim());
            }
            let mut chars = buf.chars().peekable();
            let v = self.parse_array(&mut chars)?;
            skip_ws(&mut chars);
            let rest: String = chars.collect();
            if !rest.is_empty() {
                return Err(self.err(ErrorKind::TrailingGarbage(rest)));
            }
            return Ok(v);
        }
        let mut chars = src.chars().peekable();
        let v = self.parse_scalar(&mut chars)?;
        skip_ws(&mut chars);
        let rest: String = chars.collect();
        if !rest.is_empty() {
            return Err(self.err(ErrorKind::TrailingGarbage(rest)));
        }
        Ok(v)
    }

    fn parse_array(
        &self,
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<Value, ParseError> {
        assert_eq!(chars.next(), Some('['));
        let mut items = Vec::new();
        loop {
            skip_ws(chars);
            match chars.peek() {
                None => return Err(self.err(ErrorKind::UnterminatedArray)),
                Some(']') => {
                    chars.next();
                    return Ok(Value::Array(items));
                }
                Some('[') => items.push(self.parse_array(chars)?),
                Some(_) => items.push(self.parse_scalar(chars)?),
            }
            skip_ws(chars);
            match chars.peek() {
                Some(',') => {
                    chars.next();
                }
                Some(']') | None => {}
                Some(&c) => return Err(self.err(ErrorKind::TrailingGarbage(c.to_string()))),
            }
        }
    }

    fn parse_scalar(
        &self,
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<Value, ParseError> {
        if chars.peek() == Some(&'"') {
            chars.next();
            let mut out = String::new();
            loop {
                match chars.next() {
                    None => return Err(self.err(ErrorKind::UnterminatedString)),
                    Some('"') => return Ok(Value::String(out)),
                    Some('\\') => match chars.next() {
                        Some('"') => out.push('"'),
                        Some('\\') => out.push('\\'),
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some(c) => return Err(self.err(ErrorKind::BadEscape(c))),
                        None => return Err(self.err(ErrorKind::UnterminatedString)),
                    },
                    Some(c) => out.push(c),
                }
            }
        }
        // Bare token: read until a delimiter.
        let mut tok = String::new();
        while let Some(&c) = chars.peek() {
            if c == ',' || c == ']' || c.is_whitespace() {
                break;
            }
            tok.push(c);
            chars.next();
        }
        parse_bare_token(&tok).ok_or_else(|| self.err(ErrorKind::BadValue(tok)))
    }
}

fn parse_bare_token(tok: &str) -> Option<Value> {
    match tok {
        "" => return None,
        "true" => return Some(Value::Bool(true)),
        "false" => return Some(Value::Bool(false)),
        _ => {}
    }
    let (sign, mag) = match tok.strip_prefix('-') {
        Some(rest) => (-1i64, rest),
        None => (1, tok.strip_prefix('+').unwrap_or(tok)),
    };
    if let Some(hex) = mag.strip_prefix("0x").or_else(|| mag.strip_prefix("0X")) {
        let digits: String = hex.chars().filter(|&c| c != '_').collect();
        let v = i64::from_str_radix(&digits, 16).ok()?;
        return Some(Value::Integer(sign * v));
    }
    let plain: String = tok.chars().filter(|&c| c != '_').collect();
    if plain.contains(['.', 'e', 'E']) || plain == "inf" || plain == "-inf" || plain == "nan" {
        return plain.parse::<f64>().ok().map(Value::Float);
    }
    plain.parse::<i64>().ok().map(Value::Integer)
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

/// Strip a `#` comment, respecting string literals.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Net `[` depth outside strings, or `None` on an unterminated string.
fn bracket_depth(s: &str) -> Option<i32> {
    let mut depth = 0;
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    if in_str {
        None
    } else {
        Some(depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        let doc = parse(concat!(
            "s = \"hi\\n\"\n",
            "i = 42\n",
            "neg = -7\n",
            "hex = 0xF4F4\n",
            "sep = 1_000\n",
            "f = 0.25\n",
            "e = 1e3\n",
            "b = true\n",
        ))
        .unwrap();
        assert_eq!(doc.root.get_str("s").unwrap(), "hi\n");
        assert_eq!(doc.root.get_int("i").unwrap(), 42);
        assert_eq!(doc.root.get_int("neg").unwrap(), -7);
        assert_eq!(doc.root.get_int("hex").unwrap(), 0xF4F4);
        assert_eq!(doc.root.get_int("sep").unwrap(), 1000);
        assert_eq!(doc.root.get_float("f").unwrap(), 0.25);
        assert_eq!(doc.root.get_float("e").unwrap(), 1000.0);
        assert!(doc.root.get_bool("b").unwrap());
        // Integer coerces to float, but not the reverse.
        assert_eq!(doc.root.get_float("i").unwrap(), 42.0);
        assert!(matches!(
            doc.root.get_int("f"),
            Err(LookupError::WrongType { .. })
        ));
    }

    #[test]
    fn arrays_parse_including_multiline_and_nested() {
        let doc = parse(concat!(
            "rates = [0.02, 0.05, 0.10]\n",
            "multi = [\n",
            "  1, 2, # comment inside\n",
            "  3,\n",
            "]\n",
            "nested = [[1, 2], [3]]\n",
            "empty = []\n",
            "after = 9\n",
        ))
        .unwrap();
        let rates = doc.root.get_array("rates").unwrap();
        assert_eq!(rates.len(), 3);
        assert_eq!(rates[1].as_f64(), Some(0.05));
        let multi = doc.root.get_array("multi").unwrap();
        assert_eq!(
            multi
                .iter()
                .map(|v| v.as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        let nested = doc.root.get_array("nested").unwrap();
        assert_eq!(nested[0].as_array().unwrap().len(), 2);
        assert!(doc.root.get_array("empty").unwrap().is_empty());
        assert_eq!(doc.root.get_int("after").unwrap(), 9);
    }

    #[test]
    fn tables_and_array_of_tables() {
        let doc = parse(concat!(
            "top = 1\n",
            "[a]\n",
            "x = 1\n",
            "[a.b]\n",
            "y = 2\n",
            "[[ev]]\n",
            "c = 1\n",
            "[[ev]]\n",
            "c = 2\n",
            "[other]\n",
            "z = 3\n",
        ))
        .unwrap();
        let a = doc.root.get_table("a").unwrap();
        assert_eq!(a.get_int("x").unwrap(), 1);
        assert_eq!(a.get_table("b").unwrap().get_int("y").unwrap(), 2);
        let ev = doc.root.get_tables("ev").unwrap();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].get_int("c").unwrap(), 1);
        assert_eq!(ev[1].get_int("c").unwrap(), 2);
        assert_eq!(
            doc.root.get_table("other").unwrap().get_int("z").unwrap(),
            3
        );
    }

    #[test]
    fn keys_inside_array_of_tables_sections() {
        let doc = parse(concat!(
            "[faults]\n",
            "initial = [1, 2]\n",
            "[[faults.events]]\n",
            "cycle = 5\n",
            "node = 3\n",
            "[[faults.events]]\n",
            "cycle = 9\n",
        ))
        .unwrap();
        let faults = doc.root.get_table("faults").unwrap();
        assert_eq!(faults.get_array("initial").unwrap().len(), 2);
        let events = faults.get_tables("events").unwrap();
        assert_eq!(events[0].get_int("node").unwrap(), 3);
        assert_eq!(events[1].get_int("cycle").unwrap(), 9);
        assert!(matches!(
            events[1].get_int("node"),
            Err(LookupError::Missing(_))
        ));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let doc = parse(concat!(
            "# leading comment\n",
            "\n",
            "a = 1 # trailing\n",
            "s = \"has # not a comment\" # real comment\n",
        ))
        .unwrap();
        assert_eq!(doc.root.get_int("a").unwrap(), 1);
        assert_eq!(doc.root.get_str("s").unwrap(), "has # not a comment");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("a = 1\nwhat even\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.kind, ErrorKind::ExpectedKeyValue);

        let e = parse("[bad\n").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::BadHeader(_)));
        assert_eq!(e.line, 1);

        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::DuplicateKey("a".into()));
        assert_eq!(e.line, 2);

        let e = parse("a = \"unterminated\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnterminatedString);

        let e = parse("a = [1, 2\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::UnterminatedArray);

        let e = parse("a = zebra\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::BadValue("zebra".into()));

        let e = parse("a = 1 2\n").unwrap_err();
        assert!(matches!(e.kind, ErrorKind::TrailingGarbage(_)));

        let e = parse("a = 1\n[a]\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::DuplicateKey("a".into()));

        let e = parse("a = 1\n[a.b]\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::NotATable("a".into()));
    }

    #[test]
    fn error_display_is_line_prefixed() {
        let e = parse("nope nope\n").unwrap_err();
        assert_eq!(e.to_string(), "line 1: expected `key = value`");
    }

    #[test]
    fn redefining_sections_is_tolerated_but_scalar_clash_is_not() {
        // TOML proper rejects re-opening `[a]`; this subset tolerates it
        // (useful for generated files) but never silently overwrites.
        let doc = parse("[a]\nx = 1\n[b]\n[a]\ny = 2\n").unwrap();
        let a = doc.root.get_table("a").unwrap();
        assert_eq!(a.get_int("x").unwrap(), 1);
        assert_eq!(a.get_int("y").unwrap(), 2);
        // ...and a key clash inside the re-opened table still errors.
        let e = parse("[a]\nx = 1\n[a]\nx = 2\n").unwrap_err();
        assert_eq!(e.kind, ErrorKind::DuplicateKey("x".into()));
    }
}
