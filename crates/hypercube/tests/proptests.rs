//! Property-based tests for the hypercube substrate, cross-validated
//! against the explicit-graph ground truth where cubes are small enough
//! to materialise.

use hypercube::{embed, fan, gray, paths, routing, Cube};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Constructive disjoint paths achieve the Menger optimum (= n) on
    /// materialisable cubes.
    #[test]
    fn disjoint_paths_match_flow_optimum(n in 2u32..=6, a in any::<u64>(), b in any::<u64>()) {
        let cube = Cube::new(n).unwrap();
        let mask = (1u128 << n) - 1;
        let (u, v) = (a as u128 & mask, b as u128 & mask);
        prop_assume!(u != v);
        let ps = paths::disjoint_paths(&cube, u, v).unwrap();
        let g = cube.materialize().unwrap();
        let flow = graphs::vertex_connectivity_between(&g, u as u32, v as u32);
        prop_assert_eq!(ps.len() as u32, flow);
    }

    /// E-cube routes agree with BFS distance exactly.
    #[test]
    fn shortest_path_is_shortest(n in 1u32..=8, a in any::<u64>(), b in any::<u64>()) {
        let cube = Cube::new(n).unwrap();
        let mask = (1u128 << n) - 1;
        let (u, v) = (a as u128 & mask, b as u128 & mask);
        let p = routing::shortest_path(&cube, u, v);
        prop_assert_eq!((p.len() - 1) as u32, cube.distance(u, v));
        let g = cube.materialize().unwrap();
        let d = graphs::Bfs::run(&g, u as u32).dist(v as u32).unwrap();
        prop_assert_eq!((p.len() - 1) as u32, d);
    }

    /// Fan total length is bounded by the node budget (paths are disjoint
    /// beyond the source, so they occupy ≤ 2^n − 1 distinct nodes).
    #[test]
    fn fan_total_length_bounded(
        n in 2u32..=6,
        s in any::<u64>(),
        t in proptest::collection::vec(any::<u64>(), 1..=6),
    ) {
        let cube = Cube::new(n).unwrap();
        let mask = (1u128 << n) - 1;
        let s = s as u128 & mask;
        let mut targets: Vec<u128> = t.into_iter().map(|x| x as u128 & mask).collect();
        targets.sort_unstable();
        targets.dedup();
        targets.retain(|&x| x != s);
        targets.truncate(n as usize);
        prop_assume!(!targets.is_empty());
        let f = fan::fan_paths(&cube, s, &targets).unwrap();
        fan::check_fan(&cube, s, &targets, &f)
            .map_err(|e| TestCaseError::fail(proptest::test_runner::Reason::from(e)))?;
        let total: usize = f.iter().map(|p| p.len() - 1).sum();
        prop_assert!((total as u128) < cube.num_nodes());
    }

    /// Hamiltonian paths exist exactly for odd-distance pairs and are
    /// valid when they do.
    #[test]
    fn hamiltonian_parity_dichotomy(n in 1u32..=8, a in any::<u64>(), b in any::<u64>()) {
        let cube = Cube::new(n).unwrap();
        let mask = (1u128 << n) - 1;
        let (u, v) = (a as u128 & mask, b as u128 & mask);
        match embed::hamiltonian_path(&cube, u, v) {
            Ok(p) => {
                prop_assert_eq!(cube.distance(u, v) % 2, 1);
                prop_assert_eq!(p.len() as u128, cube.num_nodes());
                let set: std::collections::HashSet<_> = p.iter().collect();
                prop_assert_eq!(set.len(), p.len());
                for w in p.windows(2) {
                    prop_assert_eq!(cube.distance(w[0], w[1]), 1);
                }
            }
            Err(_) => prop_assert_eq!(cube.distance(u, v) % 2, 0),
        }
    }

    /// Gray sequences restricted to arbitrary subsets keep the one-lap
    /// walking bound used by the HHC length analysis.
    #[test]
    fn gray_cycle_order_one_lap(m in 1u32..=8, subset in any::<u64>(), anchor in any::<u64>()) {
        let period = 1u64 << m;
        let positions: Vec<u64> = (0..period).filter(|&p| subset >> (p % 64) & 1 == 1).collect();
        prop_assume!(!positions.is_empty());
        let anchor = anchor % period;
        let order = gray::sort_along_gray_cycle(&positions, m, anchor);
        prop_assert_eq!(order.len(), positions.len());
        let total: u32 = (0..order.len())
            .map(|i| (order[i] ^ order[(i + 1) % order.len()]).count_ones())
            .sum();
        prop_assert!(total as u64 <= period, "cyclic walk exceeds one lap");
    }

    /// Binomial broadcast always reaches everyone exactly once.
    #[test]
    fn broadcast_covers_once(n in 1u32..=8, root in any::<u64>()) {
        let cube = Cube::new(n).unwrap();
        let root = root as u128 & ((1u128 << n) - 1);
        let rounds = embed::broadcast_schedule(&cube, root).unwrap();
        let mut seen = std::collections::HashSet::from([root]);
        for round in &rounds {
            for &(s, t) in round {
                prop_assert!(seen.contains(&s));
                prop_assert_eq!(cube.distance(s, t), 1);
                prop_assert!(seen.insert(t), "node reached twice");
            }
        }
        prop_assert_eq!(seen.len() as u128, cube.num_nodes());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Buddy allocator model check: under random allocate/free sequences,
    /// live blocks never overlap and accounting is exact.
    #[test]
    fn buddy_allocator_model(ops in proptest::collection::vec((0u32..3, 0u32..4), 1..60)) {
        use hypercube::alloc::BuddyAllocator;
        let n = 5u32;
        let cube = Cube::new(n).unwrap();
        let mut a = BuddyAllocator::new(&cube);
        let mut live: Vec<hypercube::alloc::Subcube> = Vec::new();
        for (op, k) in ops {
            if op < 2 {
                // allocate (twice as likely as free)
                if let Some(sc) = a.allocate(k) {
                    // no overlap with any live block
                    for other in &live {
                        let hi = sc.dim.max(other.dim);
                        prop_assert_ne!(sc.base >> hi, other.base >> hi, "overlap");
                    }
                    live.push(sc);
                }
            } else if !live.is_empty() {
                let idx = (k as usize) % live.len();
                a.free(live.swap_remove(idx));
            }
            let allocated: u128 = live.iter().map(|b| 1u128 << b.dim).sum();
            prop_assert_eq!(a.free_nodes() + allocated, 1u128 << n, "accounting");
        }
        // Free everything: must coalesce to the full cube.
        for b in live.drain(..) {
            a.free(b);
        }
        prop_assert_eq!(a.largest_free_dim(), Some(n));
    }
}
