//! One-to-one node-disjoint paths in `Q_n` (Saad–Schultz construction).
//!
//! Between distinct `u, v` with `k = H(u, v)` there are exactly `n`
//! internally vertex-disjoint paths (the connectivity of `Q_n` is `n`):
//!
//! * **rotations** — for each cyclic rotation of the differing-dimension
//!   sequence `D = (d_0 … d_{k−1})`, flip the dimensions in that rotated
//!   order. Intermediate nodes of rotation `r` are `u ⊕ (cyclic interval
//!   starting at r)`; distinct rotations produce distinct intervals, hence
//!   disjoint interiors. Length `k` each.
//! * **detours** — for each clean dimension `j ∉ D`, flip `j`, then all of
//!   `D` (fixed order), then `j` again. Every interior node differs from
//!   both `u` and `v` in bit `j`, which separates detours from rotations
//!   and from each other. Length `k + 2` each.
//!
//! The same rotation/detour algebra, lifted from dimensions of `Q_n` to
//! *external-crossing positions* of the HHC, powers the paper's HHC-level
//! construction in `hhc-core::disjoint` — this module is both a substrate
//! (used in Case A, same son-cube) and the conceptual template.

use crate::cube::{Cube, CubeError, Node};

/// A path as the sequence of visited vertices, endpoints inclusive.
pub type Path = Vec<Node>;

/// Constructs the full set of `n` internally vertex-disjoint `u–v` paths.
///
/// `H(u,v)` paths have length `H(u,v)`; the remaining `n − H(u,v)` have
/// length `H(u,v) + 2`. Errors if `u == v` or a label is out of range.
///
/// # Examples
/// ```
/// use hypercube::{Cube, paths};
/// let q = Cube::new(5).unwrap();
/// let family = paths::disjoint_paths(&q, 0b00000, 0b00111).unwrap();
/// assert_eq!(family.len(), 5);                       // connectivity of Q_5
/// paths::check_disjoint(&q, 0b00000, 0b00111, &family).unwrap();
/// ```
pub fn disjoint_paths(cube: &Cube, u: Node, v: Node) -> Result<Vec<Path>, CubeError> {
    disjoint_paths_limited(cube, u, v, cube.dim() as usize)
}

/// Like [`disjoint_paths`] but returns only the first `count ≤ n` paths
/// (all rotations first, then detours). Useful when a caller needs fewer
/// paths than the full connectivity provides.
pub fn disjoint_paths_limited(
    cube: &Cube,
    u: Node,
    v: Node,
    count: usize,
) -> Result<Vec<Path>, CubeError> {
    cube.check(u)?;
    cube.check(v)?;
    if u == v {
        return Err(CubeError::EqualNodes);
    }
    assert!(
        count <= cube.dim() as usize,
        "requested {count} paths but connectivity is {}",
        cube.dim()
    );
    let dims = cube.differing_dims(u, v);
    let k = dims.len();
    let mut paths = Vec::with_capacity(count);

    // Rotations: lengths k.
    for r in 0..k.min(count) {
        let mut order = Vec::with_capacity(k);
        order.extend_from_slice(&dims[r..]);
        order.extend_from_slice(&dims[..r]);
        paths.push(walk(u, &order));
    }

    // Detours: lengths k + 2, one per clean dimension.
    if paths.len() < count {
        for j in 0..cube.dim() {
            if dims.binary_search(&j).is_ok() {
                continue;
            }
            let mut order = Vec::with_capacity(k + 2);
            order.push(j);
            order.extend_from_slice(&dims);
            order.push(j);
            paths.push(walk(u, &order));
            if paths.len() == count {
                break;
            }
        }
    }
    Ok(paths)
}

/// [`disjoint_paths_limited`] writing into caller-owned CSR buffers:
/// each path is appended to `nodes`, with its end offset pushed to
/// `offsets` (callers seed `offsets` with the current `nodes` length —
/// usually `[0]` — so path `i` spans `nodes[offsets[i]..offsets[i+1]]`).
/// `dims_scratch` holds the differing-dimension sequence between calls.
/// Allocation-free once the buffers have warmed up.
pub fn disjoint_paths_buf(
    cube: &Cube,
    u: Node,
    v: Node,
    count: usize,
    dims_scratch: &mut Vec<u32>,
    nodes: &mut Vec<Node>,
    offsets: &mut Vec<u32>,
) -> Result<(), CubeError> {
    cube.check(u)?;
    cube.check(v)?;
    if u == v {
        return Err(CubeError::EqualNodes);
    }
    assert!(
        count <= cube.dim() as usize,
        "requested {count} paths but connectivity is {}",
        cube.dim()
    );
    dims_scratch.clear();
    dims_scratch.extend((0..cube.dim()).filter(|&d| (u ^ v) >> d & 1 == 1));
    let dims = &dims_scratch[..];
    let k = dims.len();
    let mut emitted = 0usize;

    // Rotations: lengths k. Rotation r flips dims[r..], then dims[..r].
    for r in 0..k.min(count) {
        let mut cur = u;
        nodes.push(cur);
        for &d in dims[r..].iter().chain(&dims[..r]) {
            cur ^= 1u128 << d;
            nodes.push(cur);
        }
        offsets.push(nodes.len() as u32);
        emitted += 1;
    }

    // Detours: lengths k + 2, one per clean dimension j: j, D, j.
    if emitted < count {
        for j in 0..cube.dim() {
            if dims.binary_search(&j).is_ok() {
                continue;
            }
            let mut cur = u ^ (1u128 << j);
            nodes.push(u);
            nodes.push(cur);
            for &d in dims {
                cur ^= 1u128 << d;
                nodes.push(cur);
            }
            nodes.push(cur ^ (1u128 << j));
            offsets.push(nodes.len() as u32);
            emitted += 1;
            if emitted == count {
                break;
            }
        }
    }
    Ok(())
}

/// Flips `dims` in sequence starting from `u`, collecting visited nodes.
fn walk(u: Node, dims: &[u32]) -> Path {
    let mut path = Vec::with_capacity(dims.len() + 1);
    let mut cur = u;
    path.push(cur);
    for &d in dims {
        cur ^= 1u128 << d;
        path.push(cur);
    }
    path
}

/// Checks that `paths` is a family of simple `u–v` paths in `cube`,
/// pairwise disjoint except at the shared endpoints.
pub fn check_disjoint(cube: &Cube, u: Node, v: Node, paths: &[Path]) -> Result<(), String> {
    let mut interiors = std::collections::HashSet::new();
    for (i, p) in paths.iter().enumerate() {
        if p.first() != Some(&u) || p.last() != Some(&v) {
            return Err(format!("path {i}: wrong endpoints"));
        }
        let mut own = std::collections::HashSet::new();
        for w in p.windows(2) {
            if cube.distance(w[0], w[1]) != 1 {
                return Err(format!("path {i}: non-edge {:#x}→{:#x}", w[0], w[1]));
            }
        }
        for &x in p {
            if !own.insert(x) {
                return Err(format!("path {i}: revisits {x:#x}"));
            }
        }
        for &x in &p[1..p.len() - 1] {
            if !interiors.insert(x) {
                return Err(format!("paths share interior node {x:#x}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_nodes_full_fan() {
        let q = Cube::new(4).unwrap();
        let ps = disjoint_paths(&q, 0b0000, 0b0001).unwrap();
        assert_eq!(ps.len(), 4);
        check_disjoint(&q, 0b0000, 0b0001, &ps).unwrap();
        // One direct edge, three detours of length 3.
        let mut lens: Vec<_> = ps.iter().map(|p| p.len() - 1).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![1, 3, 3, 3]);
    }

    #[test]
    fn antipodal_nodes_all_rotations() {
        let q = Cube::new(5).unwrap();
        let ps = disjoint_paths(&q, 0, 0b11111).unwrap();
        assert_eq!(ps.len(), 5);
        check_disjoint(&q, 0, 0b11111, &ps).unwrap();
        assert!(ps.iter().all(|p| p.len() - 1 == 5), "all length k = n");
    }

    #[test]
    fn path_length_structure() {
        let q = Cube::new(6).unwrap();
        let (u, v) = (0b000000u128, 0b001101u128); // k = 3
        let ps = disjoint_paths(&q, u, v).unwrap();
        check_disjoint(&q, u, v, &ps).unwrap();
        let mut lens: Vec<_> = ps.iter().map(|p| p.len() - 1).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![3, 3, 3, 5, 5, 5]);
    }

    #[test]
    fn exhaustive_q4_all_pairs() {
        let q = Cube::new(4).unwrap();
        for u in 0..16u128 {
            for v in 0..16u128 {
                if u == v {
                    assert!(disjoint_paths(&q, u, v).is_err());
                    continue;
                }
                let ps = disjoint_paths(&q, u, v).unwrap();
                assert_eq!(ps.len(), 4);
                check_disjoint(&q, u, v, &ps).unwrap_or_else(|e| panic!("u={u:#b} v={v:#b}: {e}"));
            }
        }
    }

    #[test]
    fn exhaustive_q6_from_zero() {
        let q = Cube::new(6).unwrap();
        for v in 1..64u128 {
            let ps = disjoint_paths(&q, 0, v).unwrap();
            check_disjoint(&q, 0, v, &ps).unwrap();
        }
    }

    #[test]
    fn limited_count() {
        let q = Cube::new(8).unwrap();
        let ps = disjoint_paths_limited(&q, 0, 0b11, 3).unwrap();
        assert_eq!(ps.len(), 3);
        check_disjoint(&q, 0, 0b11, &ps).unwrap();
    }

    #[test]
    fn matches_flow_optimum_on_materialized_cube() {
        let q = Cube::new(5).unwrap();
        let g = q.materialize().unwrap();
        let constructive = disjoint_paths(&q, 3, 28).unwrap();
        let optimum = graphs::vertex_connectivity_between(&g, 3, 28);
        assert_eq!(constructive.len() as u32, optimum);
    }

    #[test]
    fn symbolic_scale_q100() {
        let q = Cube::new(100).unwrap();
        let u: Node = 0;
        let v: Node = (1u128 << 40) - 1; // k = 40
        let ps = disjoint_paths(&q, u, v).unwrap();
        assert_eq!(ps.len(), 100);
        check_disjoint(&q, u, v, &ps).unwrap();
        let max_len = ps.iter().map(|p| p.len() - 1).max().unwrap();
        assert_eq!(max_len, 42); // k + 2
    }

    #[test]
    fn buffered_variant_matches_allocating_one() {
        let q = Cube::new(5).unwrap();
        let mut dims = Vec::new();
        for v in 1..32u128 {
            let expect = disjoint_paths(&q, 0, v).unwrap();
            let (mut nodes, mut offsets) = (Vec::new(), vec![0u32]);
            disjoint_paths_buf(&q, 0, v, 5, &mut dims, &mut nodes, &mut offsets).unwrap();
            assert_eq!(offsets.len(), expect.len() + 1);
            for (i, p) in expect.iter().enumerate() {
                let s = &nodes[offsets[i] as usize..offsets[i + 1] as usize];
                assert_eq!(s, p.as_slice(), "path {i} for v={v:#b}");
            }
        }
    }

    #[test]
    fn checker_detects_violations() {
        let q = Cube::new(3).unwrap();
        // Two copies of the same path share interiors.
        let p = vec![0u128, 1, 3, 7];
        assert!(check_disjoint(&q, 0, 7, &[p.clone(), p]).is_err());
    }
}
