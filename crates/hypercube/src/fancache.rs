//! Bounded cache of canonical fan solutions.
//!
//! `Q_n` is vertex-transitive under XOR translation: the fan from `s` to
//! `targets` is the image of the fan from `0` to `targets ⊕ s` under
//! `x ↦ x ⊕ s`. [`fan_paths_cached`](crate::fan::fan_paths_cached)
//! canonicalises every query to source 0 with sorted targets, so one
//! cached solve serves all `2^n` translated (and reordered) variants.
//!
//! Eviction is generation-swept ("hot/cold"): lookups probe the hot map
//! then the cold map (promoting on hit); when the hot map reaches
//! capacity it becomes the new cold map and the old cold generation is
//! dropped wholesale. This gives bounded memory (≤ 2 × capacity entries)
//! and approximate LRU at amortised O(1) per operation, with no
//! per-entry bookkeeping on the hot path.
//!
//! Entries are compact: canonicalisation bounds node labels below
//! `2^n ≤ 256` (only `n ≤ 8` queries are cacheable, which covers every
//! son-cube fan the HHC construction issues, `m ≤ 6`), so paths are
//! stored as bytes.

use std::collections::HashMap;

/// Default capacity of the hot generation. Son-cube fan keys are drawn
/// from a small space (dimension ≤ 6, at most `m + 1` sorted nonzero
/// targets), so a few hundred entries already capture whole workloads.
pub const DEFAULT_FAN_CACHE_CAPACITY: usize = 512;

/// One cached canonical fan: CSR paths in sorted-target order, from
/// source 0, node labels `< 2^n`.
#[derive(Debug, Clone)]
pub(crate) struct FanEntry {
    pub(crate) nodes: Box<[u8]>,
    /// `offsets[j]..offsets[j+1]` delimits the path to sorted target `j`.
    pub(crate) offsets: Box<[u16]>,
}

/// Bounded, generation-swept cache of canonical fans. See the module
/// docs for the design; use with
/// [`fan_paths_cached`](crate::fan::fan_paths_cached).
///
/// A capacity of 0 disables storage entirely (every lookup misses and
/// inserts are dropped), which is the reference "cache off" mode: the
/// query path is otherwise identical, so results are byte-equal.
#[derive(Debug)]
pub struct FanCache {
    capacity: usize,
    hot: HashMap<u128, FanEntry>,
    cold: HashMap<u128, FanEntry>,
    sweeps: u64,
}

impl FanCache {
    /// Creates a cache whose hot generation holds up to `capacity`
    /// entries (total retained entries are bounded by `2 × capacity`).
    pub fn new(capacity: usize) -> Self {
        FanCache {
            capacity,
            hot: HashMap::new(),
            cold: HashMap::new(),
            sweeps: 0,
        }
    }

    /// Hot-generation capacity this cache was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently retained (both generations).
    pub fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty() && self.cold.is_empty()
    }

    /// Generation sweeps performed so far (each drops the cold map).
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Drops all entries, keeping the capacity.
    pub fn clear(&mut self) {
        self.hot.clear();
        self.cold.clear();
    }

    /// Rotates generations if the hot map is full, making room for one
    /// insertion.
    fn make_room(&mut self) {
        if self.hot.len() >= self.capacity {
            self.cold = std::mem::take(&mut self.hot);
            self.sweeps += 1;
        }
    }

    pub(crate) fn get(&mut self, key: u128) -> Option<&FanEntry> {
        if self.capacity == 0 {
            return None;
        }
        if self.hot.contains_key(&key) {
            return self.hot.get(&key);
        }
        if let Some(e) = self.cold.remove(&key) {
            self.make_room();
            return Some(self.hot.entry(key).or_insert(e));
        }
        None
    }

    pub(crate) fn insert(&mut self, key: u128, entry: FanEntry) {
        if self.capacity == 0 {
            return;
        }
        self.make_room();
        self.hot.insert(key, entry);
    }
}

impl Default for FanCache {
    fn default() -> Self {
        FanCache::new(DEFAULT_FAN_CACHE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(tag: u8) -> FanEntry {
        FanEntry {
            nodes: vec![tag].into_boxed_slice(),
            offsets: vec![0, 1].into_boxed_slice(),
        }
    }

    #[test]
    fn capacity_zero_never_stores() {
        let mut c = FanCache::new(0);
        c.insert(1, entry(1));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
        assert_eq!(c.sweeps(), 0);
    }

    #[test]
    fn hit_after_insert_and_bounded_eviction() {
        let mut c = FanCache::new(2);
        c.insert(1, entry(1));
        c.insert(2, entry(2));
        assert_eq!(c.get(1).unwrap().nodes[0], 1);
        // Third insert sweeps: {1,2} become the cold generation.
        c.insert(3, entry(3));
        assert_eq!(c.sweeps(), 1);
        assert!(c.len() <= 4);
        // Cold entries are still hits, and promotion moves them back hot.
        assert_eq!(c.get(2).unwrap().nodes[0], 2);
        // Enough fresh keys expel untouched old entries entirely.
        for k in 10..20 {
            c.insert(k, entry(k as u8));
        }
        assert!(c.get(1).is_none());
        assert!(c.len() <= 4);
    }
}
