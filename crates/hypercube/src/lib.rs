//! Symbolic hypercube (`Q_n`) algorithms.
//!
//! The hierarchical hypercube construction in `hhc-core` leans on four
//! classical hypercube facts, all implemented here *symbolically* (node
//! labels are `u128` bit vectors; the `2^n`-node graph is never built):
//!
//! 1. **Routing** ([`routing`]): the e-cube shortest path between `u` and
//!    `v` has length `H(u, v)` (Hamming distance).
//! 2. **One-to-one disjoint paths** ([`paths`]): between any two distinct
//!    nodes there are `n` internally vertex-disjoint paths — `H(u,v)` of
//!    length `H(u,v)` (cyclic rotations of the differing dimensions) and
//!    `n − H(u,v)` of length `H(u,v) + 2` (detours through a clean
//!    dimension). This is the Saad–Schultz construction and the template
//!    the HHC-level construction generalises.
//! 3. **Disjoint fans** ([`fan`]): from a node `s` to any `k ≤ n` distinct
//!    targets there is a fan of `k` paths, disjoint except at `s`
//!    (Menger's fan lemma). Computed exactly by max-flow on the
//!    materialised cube — son-cubes have at most `2^m ≤ 64` nodes, so this
//!    is effectively free and always optimal.
//! 4. **Gray codes** ([`gray`]): the reflected Gray sequence is a
//!    Hamiltonian cycle of `Q_m`; ordering external crossings along it is
//!    what keeps HHC disjoint paths short (ablation F5).
//!
//! [`embed`] adds classic embeddings (Gray ring, Hamiltonian paths,
//! binomial broadcast) and [`alloc`] a buddy-system subcube allocator —
//! both supported extension features.

pub mod alloc;
pub mod cube;
pub mod embed;
pub mod fan;
pub mod fancache;
pub mod gray;
pub mod paths;
pub mod routing;

pub use cube::{Cube, CubeError, Node};
pub use fan::{fan_paths, fan_paths_cached, fan_paths_into, FanMetrics, FanScratch};
pub use fancache::{FanCache, DEFAULT_FAN_CACHE_CAPACITY};
pub use paths::disjoint_paths;
pub use routing::shortest_path;
