//! Buddy-system subcube allocation (extension feature).
//!
//! Hierarchical hypercubes target massively parallel systems, where jobs
//! request processor *subcubes*. The classic allocator is the buddy
//! system: a free `k`-subcube splits into two `(k−1)`-subcube buddies
//! differing in bit `k−1`; freeing re-coalesces buddies bottom-up. All
//! blocks are aligned (a `k`-subcube's base has its low `k` bits clear),
//! so overlap-freedom is structural.
//!
//! This is the standard companion substrate for son-cube-level job
//! placement; it is exact and O(n) per operation.

use crate::cube::{Cube, Node};
use std::collections::BTreeSet;

/// An allocated subcube: the `2^dim` nodes sharing `base`'s high bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subcube {
    /// Base address; the low `dim` bits are zero.
    pub base: Node,
    /// Dimension of the subcube (it contains `2^dim` nodes).
    pub dim: u32,
}

impl Subcube {
    /// Whether `v` belongs to this subcube.
    pub fn contains(&self, v: Node) -> bool {
        v >> self.dim == self.base >> self.dim
    }

    /// Iterator over the member nodes (small subcubes only; `dim ≤ 20`).
    pub fn nodes(&self) -> impl Iterator<Item = Node> + '_ {
        assert!(self.dim <= 20, "subcube too large to enumerate");
        (0..1u128 << self.dim).map(move |off| self.base | off)
    }
}

/// A buddy allocator over the nodes of `Q_n`.
pub struct BuddyAllocator {
    n: u32,
    /// `free[k]` holds the bases of free k-subcubes.
    free: Vec<BTreeSet<Node>>,
}

impl BuddyAllocator {
    /// Creates an allocator with the whole cube free.
    pub fn new(cube: &Cube) -> Self {
        let n = cube.dim();
        let mut free = vec![BTreeSet::new(); n as usize + 1];
        free[n as usize].insert(0);
        BuddyAllocator { n, free }
    }

    /// Allocates a `k`-subcube, splitting larger free blocks as needed.
    /// Returns `None` when no free block of dimension ≥ k exists.
    pub fn allocate(&mut self, k: u32) -> Option<Subcube> {
        assert!(k <= self.n, "requested dimension exceeds the cube");
        // Smallest free dimension ≥ k.
        let mut d = (k..=self.n).find(|&d| !self.free[d as usize].is_empty())?;
        let base = *self.free[d as usize].iter().next().expect("non-empty");
        self.free[d as usize].remove(&base);
        // Split down to k, freeing the upper buddy at each level.
        while d > k {
            d -= 1;
            let buddy = base | (1u128 << d);
            self.free[d as usize].insert(buddy);
        }
        Some(Subcube { base, dim: k })
    }

    /// Frees a previously allocated subcube, coalescing buddies.
    ///
    /// # Panics
    /// Panics on misaligned blocks or double frees (the block, or a
    /// block overlapping it, is already free).
    pub fn free(&mut self, sc: Subcube) {
        assert!(sc.dim <= self.n, "block larger than the cube");
        assert_eq!(
            sc.base & ((1u128 << sc.dim) - 1),
            0,
            "misaligned subcube base"
        );
        // Overlap / double-free detection: any already-free block that
        // contains sc, or is contained in it, is an error.
        for d in 0..=self.n {
            let hi = d.max(sc.dim);
            for &b in &self.free[d as usize] {
                // Aligned power-of-two blocks overlap iff one contains the
                // other, i.e. they agree above the larger dimension.
                assert!(
                    b >> hi != sc.base >> hi,
                    "double free / overlapping free of {sc:?}"
                );
            }
        }
        let mut base = sc.base;
        let mut d = sc.dim;
        // Coalesce while the buddy is free.
        while d < self.n {
            let buddy = base ^ (1u128 << d);
            if !self.free[d as usize].remove(&buddy) {
                break;
            }
            base &= !(1u128 << d);
            d += 1;
        }
        self.free[d as usize].insert(base);
    }

    /// Total free nodes.
    pub fn free_nodes(&self) -> u128 {
        self.free
            .iter()
            .enumerate()
            .map(|(d, set)| set.len() as u128 * (1u128 << d))
            .sum()
    }

    /// Largest free subcube dimension, or `None` if fully allocated.
    pub fn largest_free_dim(&self) -> Option<u32> {
        (0..=self.n)
            .rev()
            .find(|&d| !self.free[d as usize].is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(n: u32) -> Cube {
        Cube::new(n).unwrap()
    }

    #[test]
    fn fills_completely_with_equal_blocks() {
        let mut a = BuddyAllocator::new(&cube(6));
        let mut blocks = Vec::new();
        for _ in 0..16 {
            blocks.push(a.allocate(2).expect("room for 16 Q_2 blocks"));
        }
        assert_eq!(a.allocate(2), None, "cube exhausted");
        assert_eq!(a.free_nodes(), 0);
        // Overlap freedom: all 64 nodes covered exactly once.
        let mut seen = std::collections::HashSet::new();
        for b in &blocks {
            for v in b.nodes() {
                assert!(seen.insert(v), "overlap at {v}");
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn free_coalesces_back_to_full_cube() {
        let mut a = BuddyAllocator::new(&cube(5));
        let blocks: Vec<_> = (0..8).map(|_| a.allocate(2).unwrap()).collect();
        assert_eq!(a.largest_free_dim(), None);
        for b in blocks {
            a.free(b);
        }
        assert_eq!(a.largest_free_dim(), Some(5), "must coalesce fully");
        assert_eq!(a.free_nodes(), 32);
        // And the whole cube is allocatable again.
        assert!(a.allocate(5).is_some());
    }

    #[test]
    fn mixed_sizes_and_reuse() {
        let mut a = BuddyAllocator::new(&cube(4));
        let big = a.allocate(3).unwrap();
        let s1 = a.allocate(1).unwrap();
        let s2 = a.allocate(2).unwrap();
        assert_eq!(a.free_nodes(), 16 - 8 - 2 - 4);
        a.free(s1);
        let s3 = a.allocate(1).unwrap();
        assert_eq!(s3, s1, "freed block is reused");
        a.free(big);
        a.free(s2);
        a.free(s3);
        assert_eq!(a.largest_free_dim(), Some(4));
    }

    #[test]
    fn zero_dim_blocks_are_single_nodes() {
        let mut a = BuddyAllocator::new(&cube(2));
        let singles: Vec<_> = (0..4).map(|_| a.allocate(0).unwrap()).collect();
        assert_eq!(a.allocate(0), None);
        let bases: std::collections::HashSet<_> = singles.iter().map(|s| s.base).collect();
        assert_eq!(bases.len(), 4);
    }

    #[test]
    fn fragmentation_blocks_large_requests() {
        let mut a = BuddyAllocator::new(&cube(3));
        let x = a.allocate(0).unwrap(); // pins one node
        assert_eq!(a.allocate(3), None, "full cube no longer available");
        assert!(a.allocate(2).is_some(), "other half still has a Q_2");
        a.free(x);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn detects_double_free() {
        let mut a = BuddyAllocator::new(&cube(3));
        let b = a.allocate(1).unwrap();
        a.free(b);
        a.free(b);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn rejects_misaligned_free() {
        let mut a = BuddyAllocator::new(&cube(3));
        a.free(Subcube { base: 1, dim: 1 });
    }

    #[test]
    fn subcube_membership() {
        let sc = Subcube {
            base: 0b1100,
            dim: 2,
        };
        assert!(sc.contains(0b1101));
        assert!(sc.contains(0b1111));
        assert!(!sc.contains(0b1000));
        assert_eq!(sc.nodes().count(), 4);
    }

    #[test]
    fn son_cube_allocation_scenario() {
        // Typical HHC job placement: carve a son-cube (Q_6) into job
        // partitions, free in arbitrary order, end fully coalesced.
        let mut a = BuddyAllocator::new(&cube(6));
        let jobs: Vec<_> = [3u32, 3, 2, 2, 2, 1, 1, 0, 0]
            .iter()
            .map(|&k| a.allocate(k).expect("fits"))
            .collect();
        assert_eq!(
            a.free_nodes(),
            64 - jobs.iter().map(|j| 1u128 << j.dim).sum::<u128>()
        );
        for j in jobs.into_iter().rev() {
            a.free(j);
        }
        assert_eq!(a.largest_free_dim(), Some(6));
    }
}
