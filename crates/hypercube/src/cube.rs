//! The symbolic hypercube `Q_n` and its node representation.

use graphs::CsrGraph;

/// A vertex of `Q_n`, packed into the low `n` bits of a `u128`.
///
/// Two vertices are adjacent iff their labels differ in exactly one bit.
pub type Node = u128;

/// Errors from cube construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CubeError {
    /// Dimension outside the supported range `1..=127`.
    BadDimension(u32),
    /// A node label has bits above the cube dimension.
    NodeOutOfRange(Node),
    /// Operation requires two distinct nodes.
    EqualNodes,
    /// Materialisation requested for a cube too large to build explicitly.
    TooLargeToMaterialize(u32),
}

impl std::fmt::Display for CubeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CubeError::BadDimension(n) => write!(f, "cube dimension {n} not in 1..=127"),
            CubeError::NodeOutOfRange(v) => write!(f, "node {v:#x} outside the cube"),
            CubeError::EqualNodes => write!(f, "operation requires distinct nodes"),
            CubeError::TooLargeToMaterialize(n) => {
                write!(f, "refusing to materialise Q_{n} (> 2^24 nodes)")
            }
        }
    }
}

impl std::error::Error for CubeError {}

/// The `n`-dimensional hypercube, `1 ≤ n ≤ 127`.
///
/// All algorithms are symbolic; memory use is independent of `2^n`.
///
/// # Examples
/// ```
/// use hypercube::Cube;
/// let q = Cube::new(10).unwrap();
/// assert_eq!(q.num_nodes(), 1024);
/// assert_eq!(q.distance(0b0000000000, 0b1100000011), 4);
/// assert_eq!(q.neighbors(0).count(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cube {
    n: u32,
}

impl Cube {
    /// Creates `Q_n`.
    pub fn new(n: u32) -> Result<Self, CubeError> {
        if (1..=127).contains(&n) {
            Ok(Cube { n })
        } else {
            Err(CubeError::BadDimension(n))
        }
    }

    /// Dimension `n` (= degree = connectivity = diameter).
    #[inline]
    pub fn dim(&self) -> u32 {
        self.n
    }

    /// Number of vertices, `2^n`.
    #[inline]
    pub fn num_nodes(&self) -> u128 {
        1u128 << self.n
    }

    /// Whether `v` is a valid vertex label.
    #[inline]
    pub fn contains(&self, v: Node) -> bool {
        v >> self.n == 0
    }

    /// Validates a node label.
    pub fn check(&self, v: Node) -> Result<(), CubeError> {
        if self.contains(v) {
            Ok(())
        } else {
            Err(CubeError::NodeOutOfRange(v))
        }
    }

    /// Hamming distance between two vertices (= graph distance in `Q_n`).
    #[inline]
    pub fn distance(&self, u: Node, v: Node) -> u32 {
        debug_assert!(self.contains(u) && self.contains(v));
        (u ^ v).count_ones()
    }

    /// The neighbour of `v` across dimension `d`.
    #[inline]
    pub fn flip(&self, v: Node, d: u32) -> Node {
        debug_assert!(d < self.n, "dimension {d} out of range");
        v ^ (1u128 << d)
    }

    /// Iterator over the `n` neighbours of `v`, in dimension order.
    pub fn neighbors(&self, v: Node) -> impl Iterator<Item = Node> + '_ {
        debug_assert!(self.contains(v));
        (0..self.n).map(move |d| v ^ (1u128 << d))
    }

    /// The dimensions in which `u` and `v` differ, ascending.
    pub fn differing_dims(&self, u: Node, v: Node) -> Vec<u32> {
        let mut x = u ^ v;
        let mut dims = Vec::with_capacity(x.count_ones() as usize);
        while x != 0 {
            let d = x.trailing_zeros();
            dims.push(d);
            x &= x - 1;
        }
        dims
    }

    /// Materialises the cube as an explicit [`CsrGraph`]
    /// (node ids equal labels). Guarded to `n ≤ 24`.
    pub fn materialize(&self) -> Result<CsrGraph, CubeError> {
        if self.n > 24 {
            return Err(CubeError::TooLargeToMaterialize(self.n));
        }
        let n_nodes = 1u32 << self.n;
        Ok(CsrGraph::from_fn(n_nodes, |v| {
            (0..self.n)
                .map(move |d| v ^ (1u32 << d))
                .collect::<Vec<_>>()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::bfs;

    #[test]
    fn construction_bounds() {
        assert!(Cube::new(0).is_err());
        assert!(Cube::new(1).is_ok());
        assert!(Cube::new(127).is_ok());
        assert!(Cube::new(128).is_err());
    }

    #[test]
    fn basic_metrics() {
        let q = Cube::new(4).unwrap();
        assert_eq!(q.dim(), 4);
        assert_eq!(q.num_nodes(), 16);
        assert!(q.contains(0b1111));
        assert!(!q.contains(0b10000));
        assert_eq!(q.distance(0b0000, 0b1011), 3);
        assert_eq!(q.flip(0b0000, 2), 0b0100);
    }

    #[test]
    fn neighbors_differ_in_one_bit() {
        let q = Cube::new(5).unwrap();
        let v = 0b10110;
        let nbrs: Vec<_> = q.neighbors(v).collect();
        assert_eq!(nbrs.len(), 5);
        for w in nbrs {
            assert_eq!(q.distance(v, w), 1);
        }
    }

    #[test]
    fn differing_dims_ascending() {
        let q = Cube::new(8).unwrap();
        assert_eq!(q.differing_dims(0b0000_0000, 0b1010_0100), vec![2, 5, 7]);
        assert_eq!(q.differing_dims(0b11, 0b11), Vec::<u32>::new());
    }

    #[test]
    fn big_cube_symbolic_ops() {
        let q = Cube::new(127).unwrap();
        let u: Node = 0;
        let v: Node = (1u128 << 127) - 1; // all 127 bits set
        assert!(q.contains(v));
        assert_eq!(q.distance(u, v), 127);
        assert_eq!(q.differing_dims(u, v).len(), 127);
    }

    #[test]
    fn materialized_cube_matches_theory() {
        for n in 1..=6 {
            let q = Cube::new(n).unwrap();
            let g = q.materialize().unwrap();
            assert_eq!(g.num_nodes() as u128, q.num_nodes());
            assert_eq!(g.num_edges() as u128, (q.num_nodes() * n as u128) / 2);
            assert!(graphs::props::is_regular(&g, n));
            assert!(graphs::props::is_bipartite(&g));
            assert_eq!(bfs::diameter(&g), Some(n));
        }
    }

    #[test]
    fn materialize_guard() {
        assert!(matches!(
            Cube::new(25).unwrap().materialize(),
            Err(CubeError::TooLargeToMaterialize(25))
        ));
    }

    #[test]
    fn bfs_distance_equals_hamming() {
        let q = Cube::new(6).unwrap();
        let g = q.materialize().unwrap();
        let bfs = graphs::Bfs::run(&g, 0b101010);
        for v in 0..64u32 {
            assert_eq!(
                bfs.dist(v),
                Some(q.distance(0b101010, v as Node)),
                "distance mismatch at {v:#b}"
            );
        }
    }

    #[test]
    fn error_display_is_informative() {
        let e = Cube::new(0).unwrap_err();
        assert!(e.to_string().contains("dimension"));
        let e = Cube::new(4).unwrap().check(0x100).unwrap_err();
        assert!(e.to_string().contains("outside"));
    }
}
