//! Disjoint fans in `Q_n`: paths from one source to many targets,
//! pairwise vertex-disjoint except at the source.
//!
//! Menger's fan lemma guarantees a fan to any `k ≤ n` distinct targets.
//! The HHC construction needs fans only *inside a son-cube* (`Q_m`, at most
//! `2^m ≤ 64` nodes for every supported `m`), so an exact max-flow
//! formulation is both simple and effectively free; it also returns a
//! *minimum total length* fan, because each augmenting BFS phase of Dinic
//! saturates shortest augmenting paths first on this unit-capacity network.
//!
//! Flow model: vertex split (`x_in → x_out`, capacity 1; source unbounded),
//! each cube edge in both directions with capacity 1, and one arc
//! `t_out → sink` per target. Max-flow equals the fan size; extraction
//! walks positive-flow arcs from the source.

use crate::cube::{Cube, CubeError, Node};
use crate::fancache::{FanCache, FanEntry};
use graphs::{ArcId, Dinic};

/// Errors from fan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FanError {
    /// Underlying cube error (bad dimension / label).
    Cube(CubeError),
    /// Targets must be distinct and different from the source.
    BadTargets,
    /// More targets than the cube's connectivity can support.
    TooManyTargets { targets: usize, dim: u32 },
    /// Fans are computed by flow on the materialised cube; `n ≤ 16` only.
    CubeTooLarge(u32),
}

impl std::fmt::Display for FanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FanError::Cube(e) => write!(f, "{e}"),
            FanError::BadTargets => write!(f, "targets must be distinct and ≠ source"),
            FanError::TooManyTargets { targets, dim } => {
                write!(f, "{targets} targets exceed connectivity {dim}")
            }
            FanError::CubeTooLarge(n) => write!(f, "fan computation limited to n ≤ 16, got {n}"),
        }
    }
}

impl std::error::Error for FanError {}

impl From<CubeError> for FanError {
    fn from(e: CubeError) -> Self {
        FanError::Cube(e)
    }
}

/// Effort counters accumulated by a [`FanScratch`] across queries.
///
/// Plain `u64` increments on paths that already run a max-flow solve —
/// unconditionally enabled. Solver-level effort (BFS passes, arc
/// mutations) is reported separately via [`FanScratch::solver_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FanMetrics {
    /// Validated [`fan_paths_into`] calls (including empty target sets).
    pub queries: u64,
    /// Total targets across all queries (= total fan paths produced).
    pub targets_requested: u64,
    /// Targets adjacent to the source whose direct edge was seeded,
    /// bypassing the solver (counts fast-path targets too).
    pub seeded_direct: u64,
    /// Flow networks (re)built because the cube dimension changed.
    pub network_builds: u64,
    /// Queries answered by the combinatorial neighbour-fan fast path
    /// (all targets adjacent to the source; no solver, no cache).
    pub fast_path: u64,
    /// [`fan_paths_cached`] queries answered from the [`FanCache`].
    pub cache_hits: u64,
    /// [`fan_paths_cached`] queries that had to solve (and, capacity
    /// permitting, populated the cache).
    pub cache_misses: u64,
}

impl FanMetrics {
    /// Element-wise accumulation (for merging per-thread scratches).
    pub fn merge(&mut self, other: &FanMetrics) {
        self.queries += other.queries;
        self.targets_requested += other.targets_requested;
        self.seeded_direct += other.seeded_direct;
        self.network_builds += other.network_builds;
        self.fast_path += other.fast_path;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
    }

    /// Cache hit rate over [`fan_paths_cached`] queries that reached the
    /// cache (fast-path queries never do); `None` before any such query.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let probes = self.cache_hits + self.cache_misses;
        (probes > 0).then(|| self.cache_hits as f64 / probes as f64)
    }
}

#[inline]
fn v_in(v: u32) -> u32 {
    2 * v
}
#[inline]
fn v_out(v: u32) -> u32 {
    2 * v + 1
}

const UNSET: u32 = u32::MAX;

/// Reusable state for [`fan_paths_into`]: the vertex-split flow network
/// for one cube dimension, capacity/flow rewind tables, and the output
/// arena. Building the network is the dominant cost of a fan query;
/// keeping it across queries (the batch engine's per-thread scratch
/// pattern) turns each query into a capacity reset plus one small
/// max-flow, with zero steady-state allocation.
pub struct FanScratch {
    /// Cube dimension the network was built for (`UNSET` = not built).
    dim: u32,
    dinic: Option<Dinic>,
    /// Default capacity per forward arc, in `add_edge` order.
    default_caps: Vec<u32>,
    /// Arc `v_in(v) → v_out(v)` per node.
    vertex_arc: Vec<ArcId>,
    /// Arc `v_out(v) → v_in(v ⊕ 2^dim)` at index `v·n + dim`.
    edge_arc: Vec<ArcId>,
    /// Arc `v_out(v) → sink` per node (default capacity 0).
    terminal_arc: Vec<ArcId>,
    /// Per-call: index of each node in `targets`, or `UNSET`.
    target_idx: Vec<u32>,
    /// Per-call: remaining decomposable flow per forward arc.
    rem: Vec<u32>,
    /// Decomposition output in discovery order (flat CSR).
    tmp_nodes: Vec<Node>,
    tmp_offsets: Vec<u32>,
    /// `path_of_target[i]` = index into `tmp_offsets` of target `i`'s path.
    path_of_target: Vec<u32>,
    /// Per-call canonicalisation: `(target ⊕ s, original index)`, sorted.
    canon: Vec<(Node, u32)>,
    /// Per-call: the sorted canonical targets as a plain node slice.
    canon_nodes: Vec<Node>,
    /// Per-call: canonical-order path indices being remapped.
    pot_tmp: Vec<u32>,
    /// Monotone effort counters; see [`FanMetrics`].
    metrics: FanMetrics,
}

impl FanScratch {
    pub fn new() -> Self {
        FanScratch {
            dim: UNSET,
            dinic: None,
            default_caps: Vec::new(),
            vertex_arc: Vec::new(),
            edge_arc: Vec::new(),
            terminal_arc: Vec::new(),
            target_idx: Vec::new(),
            rem: Vec::new(),
            tmp_nodes: Vec::new(),
            tmp_offsets: Vec::new(),
            path_of_target: Vec::new(),
            canon: Vec::new(),
            canon_nodes: Vec::new(),
            pot_tmp: Vec::new(),
            metrics: FanMetrics::default(),
        }
    }

    /// Effort counters accumulated since construction or the last
    /// [`FanScratch::reset_metrics`].
    pub fn metrics(&self) -> FanMetrics {
        self.metrics
    }

    /// Zeroes the effort counters (network and solver state untouched).
    pub fn reset_metrics(&mut self) {
        self.metrics = FanMetrics::default();
        if let Some(d) = self.dinic.as_mut() {
            d.reset_stats();
        }
    }

    /// Counters of the underlying max-flow solver, accumulated across
    /// every query since the network was built (default if never built).
    pub fn solver_stats(&self) -> graphs::DinicStats {
        self.dinic.as_ref().map(|d| d.stats()).unwrap_or_default()
    }

    /// Number of fan paths produced by the last [`fan_paths_into`] call.
    pub fn num_paths(&self) -> usize {
        self.path_of_target.len()
    }

    /// Whether `targets[i]` was served by the last [`fan_paths_avoiding`]
    /// call. Plain fan entry points always serve every target (the fan
    /// lemma guarantees it), so this is only informative after an
    /// avoiding query, where forbidden nodes may make some targets
    /// unreachable. Reading [`FanScratch::path`] for an unserved target
    /// is a logic error (it panics).
    pub fn target_served(&self, i: usize) -> bool {
        self.path_of_target[i] != UNSET
    }

    /// The fan path to `targets[i]` from the last call (`s → targets[i]`).
    pub fn path(&self, i: usize) -> &[Node] {
        let p = self.path_of_target[i] as usize;
        let (a, b) = (
            self.tmp_offsets[p] as usize,
            self.tmp_offsets[p + 1] as usize,
        );
        &self.tmp_nodes[a..b]
    }

    /// Builds (or rebuilds) the flow network for dimension `n`.
    fn ensure_network(&mut self, n: u32) {
        if self.dim == n {
            return;
        }
        let num = 1u32 << n;
        let sink = 2 * num;
        let mut d = Dinic::new(sink as usize + 1);
        self.default_caps.clear();
        self.vertex_arc.clear();
        self.edge_arc.clear();
        self.edge_arc.resize((num * n.max(1)) as usize, UNSET);
        self.terminal_arc.clear();
        for v in 0..num {
            self.vertex_arc.push(d.add_edge(v_in(v), v_out(v), 1));
            self.default_caps.push(1);
        }
        for v in 0..num {
            for dim in 0..n {
                // Add each undirected edge once, as two directed arcs.
                let w = v ^ (1u32 << dim);
                if v < w {
                    self.edge_arc[(v * n + dim) as usize] = d.add_edge(v_out(v), v_in(w), 1);
                    self.default_caps.push(1);
                    self.edge_arc[(w * n + dim) as usize] = d.add_edge(v_out(w), v_in(v), 1);
                    self.default_caps.push(1);
                }
            }
        }
        // A terminal arc per node, default capacity 0: per-call target
        // sets just raise their own arcs to 1.
        for v in 0..num {
            self.terminal_arc.push(d.add_edge(v_out(v), sink, 0));
            self.default_caps.push(0);
        }
        self.dinic = Some(d);
        self.dim = n;
        self.metrics.network_builds += 1;
    }
}

impl Default for FanScratch {
    fn default() -> Self {
        FanScratch::new()
    }
}

/// Computes a fan: one path from `s` to each target, pairwise
/// vertex-disjoint except at `s`. Paths are returned in target order
/// (`paths[i]` ends at `targets[i]`).
///
/// Requires `targets.len() ≤ n` (fan lemma bound) and `n ≤ 16`
/// (the cube is materialised as a flow network of `2^{n+1} + 1` nodes).
///
/// Allocates the flow network per call; hot paths should hold a
/// [`FanScratch`] and call [`fan_paths_into`] instead.
///
/// # Examples
/// ```
/// use hypercube::{Cube, fan};
/// let q = Cube::new(3).unwrap();
/// let fan = fan::fan_paths(&q, 0b000, &[0b011, 0b101, 0b110]).unwrap();
/// assert_eq!(fan.len(), 3);
/// fan::check_fan(&q, 0b000, &[0b011, 0b101, 0b110], &fan).unwrap();
/// ```
pub fn fan_paths(cube: &Cube, s: Node, targets: &[Node]) -> Result<Vec<Vec<Node>>, FanError> {
    let mut scratch = FanScratch::new();
    fan_paths_into(cube, s, targets, &mut scratch)?;
    Ok((0..scratch.num_paths())
        .map(|i| scratch.path(i).to_vec())
        .collect())
}

/// [`fan_paths`] writing into caller-owned buffers: the fan is computed
/// inside `scratch` and read back through [`FanScratch::path`]. After the
/// first call at a given dimension, subsequent calls allocate nothing.
///
/// # Panics
///
/// Panics only on an internal invariant violation: the fan lemma
/// guarantees a fan of size `targets.len()` exists whenever the validated
/// preconditions hold, so a smaller max-flow (or a stuck decomposition)
/// indicates a bug in this module, never bad input — all input errors are
/// reported as [`FanError`].
pub fn fan_paths_into(
    cube: &Cube,
    s: Node,
    targets: &[Node],
    scratch: &mut FanScratch,
) -> Result<(), FanError> {
    let n = validate_and_index(cube, s, targets, scratch)?;
    if targets.is_empty() {
        return Ok(());
    }
    if all_adjacent(s, targets) {
        write_direct_fan(s, targets, scratch);
        return Ok(());
    }
    solve_dinic(n, s, targets, scratch);
    Ok(())
}

/// [`fan_paths_into`] restricted to the fault-free subcube: nodes whose
/// bit is set in `forbidden` are excluded from the flow network (their
/// vertex capacity is zeroed), so no returned path visits them.
///
/// Unlike the plain entry points this is *best-effort*: forbidden nodes
/// can disconnect targets from the source, so instead of asserting the
/// fan-lemma value this returns the number of targets actually served.
/// Check [`FanScratch::target_served`] per target before reading its
/// path. With `forbidden == 0` this is exactly [`fan_paths_into`] and
/// serves every target.
///
/// Never consults or populates the [`FanCache`] — cached entries are
/// keyed on `(s, targets)` only and would be unsound to replay against
/// an arbitrary fault set. The HHC fault-avoiding construction calls
/// this rarely (only on queries whose plain family is actually blocked),
/// so the uncached solve is not a hot path.
///
/// `forbidden` is a bitmask over node labels, so this entry point is
/// limited to `n ≤ 6` (64 nodes) — every HHC son-cube qualifies.
pub fn fan_paths_avoiding(
    cube: &Cube,
    s: Node,
    targets: &[Node],
    forbidden: u64,
    scratch: &mut FanScratch,
) -> Result<usize, FanError> {
    if cube.dim() > 6 {
        return Err(FanError::CubeTooLarge(cube.dim()));
    }
    let n = validate_and_index(cube, s, targets, scratch)?;
    debug_assert_eq!(forbidden >> s & 1, 0, "source itself forbidden");
    if targets.is_empty() {
        return Ok(0);
    }
    if forbidden == 0 {
        if all_adjacent(s, targets) {
            write_direct_fan(s, targets, scratch);
        } else {
            solve_dinic(n, s, targets, scratch);
        }
        return Ok(targets.len());
    }
    if all_adjacent(s, targets) && targets.iter().all(|&t| forbidden >> t & 1 == 0) {
        // Direct edges bypass every interior node, so faults elsewhere in
        // the cube cannot invalidate the star fan.
        write_direct_fan(s, targets, scratch);
        return Ok(targets.len());
    }
    Ok(solve_dinic_avoiding(n, s, targets, forbidden, scratch) as usize)
}

/// Input validation shared by every fan entry point. On success the
/// output arena is cleared, `target_idx` maps node labels to positions in
/// `targets`, and the query is counted in the metrics.
fn validate_and_index(
    cube: &Cube,
    s: Node,
    targets: &[Node],
    scratch: &mut FanScratch,
) -> Result<u32, FanError> {
    let n = cube.dim();
    if n > 16 {
        return Err(FanError::CubeTooLarge(n));
    }
    cube.check(s)?;
    for &t in targets {
        cube.check(t)?;
    }
    if targets.len() > n as usize {
        return Err(FanError::TooManyTargets {
            targets: targets.len(),
            dim: n,
        });
    }
    scratch.tmp_nodes.clear();
    scratch.tmp_offsets.clear();
    scratch.tmp_offsets.push(0);
    scratch.path_of_target.clear();

    // Duplicate/source detection doubles as the target index used by the
    // flow decomposition.
    scratch.target_idx.clear();
    scratch.target_idx.resize(1usize << n, UNSET);
    for (i, &t) in targets.iter().enumerate() {
        if t == s || scratch.target_idx[t as usize] != UNSET {
            return Err(FanError::BadTargets);
        }
        scratch.target_idx[t as usize] = i as u32;
    }
    scratch.metrics.queries += 1;
    scratch.metrics.targets_requested += targets.len() as u64;
    Ok(n)
}

#[inline]
fn all_adjacent(s: Node, targets: &[Node]) -> bool {
    targets.iter().all(|&t| (t ^ s).count_ones() == 1)
}

/// Combinatorial fast path: when every target is a neighbour of `s`, the
/// unique minimum fan is the star of direct edges — exactly what the flow
/// formulation returns after seeding (each target's vertex capacity is
/// consumed by its own terminal unit, so no seeded edge is ever rerouted).
/// Writing it directly skips the solver, and even network construction.
fn write_direct_fan(s: Node, targets: &[Node], scratch: &mut FanScratch) {
    for (i, &t) in targets.iter().enumerate() {
        scratch.tmp_nodes.push(s);
        scratch.tmp_nodes.push(t);
        scratch.tmp_offsets.push(scratch.tmp_nodes.len() as u32);
        scratch.path_of_target.push(i as u32);
    }
    scratch.metrics.seeded_direct += targets.len() as u64;
    scratch.metrics.fast_path += 1;
}

/// The general solver: seeds direct edges, runs unit max-flow, and
/// decomposes the flow into the output arena. Requires
/// [`validate_and_index`] to have set up `target_idx` for exactly this
/// `(s, targets)` query, and `targets` non-empty.
fn solve_dinic(n: u32, s: Node, targets: &[Node], scratch: &mut FanScratch) {
    scratch.ensure_network(n);
    let num = 1u32 << n;
    let sink = 2 * num;
    let s32 = s as u32;
    let d = scratch.dinic.as_mut().expect("network built");
    // Undo only what the previous query moved (O(arcs on its augmenting
    // paths)) rather than rewriting every capacity in the network.
    d.rewind(&scratch.default_caps);
    d.set_cap(scratch.vertex_arc[s as usize], u32::MAX / 2);
    for &t in targets {
        d.set_cap(scratch.terminal_arc[t as usize], 1);
    }

    // Seed every target adjacent to `s` with its direct edge. A target is
    // never an interior node of any fan path (its vertex capacity is
    // consumed by its own terminal unit), so the direct edge is
    // compatible with — and no longer than — some maximum fan; the
    // solver only has to route the remaining targets.
    let mut seeded = 0u32;
    for &t in targets {
        let t32 = t as u32;
        let diff = t32 ^ s32;
        if diff.count_ones() == 1 {
            let dim = diff.trailing_zeros();
            d.force_unit(scratch.vertex_arc[s as usize]);
            d.force_unit(scratch.edge_arc[(s32 * n + dim) as usize]);
            d.force_unit(scratch.vertex_arc[t as usize]);
            d.force_unit(scratch.terminal_arc[t as usize]);
            seeded += 1;
        }
    }
    scratch.metrics.seeded_direct += seeded as u64;

    // The terminal arcs cap the flow at exactly `targets.len()`, and the
    // fan lemma guarantees that value is reached — so the solver can stop
    // there instead of running a final no-progress phase to prove it.
    // Every augmenting path here has bottleneck 1 (the terminal arcs),
    // which is exactly the regime the unit solver is built for.
    let flow = seeded + d.max_flow_unit(v_in(s32), sink, targets.len() as u32 - seeded);
    assert_eq!(
        flow as usize,
        targets.len(),
        "fan lemma violated: flow {flow} < {} targets (bug)",
        targets.len()
    );

    // Decompose: remaining flow per forward arc (the network is simple,
    // so an arc is uniquely determined by its endpoints), then walk.
    // Every arc with nonzero flow is in the solver's touched set, so
    // only those slots need reading.
    scratch.rem.clear();
    scratch.rem.resize(scratch.default_caps.len(), 0);
    for &slot in d.touched_slots() {
        scratch.rem[slot as usize] = d.flow_on(2 * slot);
    }
    scratch.path_of_target.resize(targets.len(), UNSET);
    let take = |rem: &mut Vec<u32>, aid: ArcId| -> bool {
        let slot = &mut rem[(aid / 2) as usize];
        if *slot > 0 {
            *slot -= 1;
            true
        } else {
            false
        }
    };
    for p in 0..flow {
        scratch.tmp_nodes.push(s);
        let mut cur = s32;
        loop {
            let _ = take(&mut scratch.rem, scratch.vertex_arc[cur as usize]);
            // Terminate here if this node's terminal arc still carries flow
            // (a target is never a through-node: its vertex capacity is 1).
            let t_idx = scratch.target_idx[cur as usize];
            if t_idx != UNSET && take(&mut scratch.rem, scratch.terminal_arc[cur as usize]) {
                assert_eq!(
                    scratch.path_of_target[t_idx as usize], UNSET,
                    "target reached twice"
                );
                scratch.path_of_target[t_idx as usize] = p;
                scratch.tmp_offsets.push(scratch.tmp_nodes.len() as u32);
                break;
            }
            let next = (0..n)
                .find(|&dim| take(&mut scratch.rem, scratch.edge_arc[(cur * n + dim) as usize]))
                .map(|dim| cur ^ (1u32 << dim))
                .expect("flow decomposition stuck (bug)");
            scratch.tmp_nodes.push(next as Node);
            cur = next;
        }
    }
    debug_assert!(scratch.path_of_target.iter().all(|&p| p != UNSET));
}

/// [`solve_dinic`] over the fault-free subcube: forbidden nodes get
/// vertex capacity 0, forbidden targets get no terminal arc, and only
/// non-forbidden adjacent targets are seeded. Returns the max-flow value
/// (= targets served); unserved targets keep `path_of_target == UNSET`.
fn solve_dinic_avoiding(
    n: u32,
    s: Node,
    targets: &[Node],
    forbidden: u64,
    scratch: &mut FanScratch,
) -> u32 {
    scratch.ensure_network(n);
    let num = 1u32 << n;
    let sink = 2 * num;
    let s32 = s as u32;
    let d = scratch.dinic.as_mut().expect("network built");
    d.rewind(&scratch.default_caps);
    d.set_cap(scratch.vertex_arc[s as usize], u32::MAX / 2);
    // Remove every forbidden node from the network by zeroing its
    // vertex-split arc: no flow (hence no fan path) can pass through it.
    let mut f = forbidden;
    while f != 0 {
        let v = f.trailing_zeros();
        f &= f - 1;
        if v < num {
            d.set_cap(scratch.vertex_arc[v as usize], 0);
        }
    }
    let mut want = 0u32;
    for &t in targets {
        if forbidden >> t & 1 == 0 {
            d.set_cap(scratch.terminal_arc[t as usize], 1);
            want += 1;
        }
    }

    // Seed direct edges exactly as in the plain solver, but only for
    // reachable (non-forbidden) targets: forcing a unit through a zeroed
    // vertex arc would corrupt the flow. The seeding argument from
    // `solve_dinic` carries over to the fault-free subcube — a served
    // target is never interior to another path, so its direct edge is
    // compatible with some maximum fan of the restricted network.
    let mut seeded = 0u32;
    for &t in targets {
        let t32 = t as u32;
        let diff = t32 ^ s32;
        if diff.count_ones() == 1 && forbidden >> t & 1 == 0 {
            let dim = diff.trailing_zeros();
            d.force_unit(scratch.vertex_arc[s as usize]);
            d.force_unit(scratch.edge_arc[(s32 * n + dim) as usize]);
            d.force_unit(scratch.vertex_arc[t as usize]);
            d.force_unit(scratch.terminal_arc[t as usize]);
            seeded += 1;
        }
    }
    scratch.metrics.seeded_direct += seeded as u64;

    // No fan-lemma assertion here: faults may legitimately cut targets
    // off, so the flow value is the answer, not an invariant.
    let flow = if want > seeded {
        seeded + d.max_flow_unit(v_in(s32), sink, want - seeded)
    } else {
        seeded
    };

    scratch.rem.clear();
    scratch.rem.resize(scratch.default_caps.len(), 0);
    for &slot in d.touched_slots() {
        scratch.rem[slot as usize] = d.flow_on(2 * slot);
    }
    scratch.path_of_target.resize(targets.len(), UNSET);
    let take = |rem: &mut Vec<u32>, aid: ArcId| -> bool {
        let slot = &mut rem[(aid / 2) as usize];
        if *slot > 0 {
            *slot -= 1;
            true
        } else {
            false
        }
    };
    for p in 0..flow {
        scratch.tmp_nodes.push(s);
        let mut cur = s32;
        loop {
            let _ = take(&mut scratch.rem, scratch.vertex_arc[cur as usize]);
            let t_idx = scratch.target_idx[cur as usize];
            if t_idx != UNSET && take(&mut scratch.rem, scratch.terminal_arc[cur as usize]) {
                assert_eq!(
                    scratch.path_of_target[t_idx as usize], UNSET,
                    "target reached twice"
                );
                scratch.path_of_target[t_idx as usize] = p;
                scratch.tmp_offsets.push(scratch.tmp_nodes.len() as u32);
                break;
            }
            let next = (0..n)
                .find(|&dim| take(&mut scratch.rem, scratch.edge_arc[(cur * n + dim) as usize]))
                .map(|dim| cur ^ (1u32 << dim))
                .expect("flow decomposition stuck (bug)");
            scratch.tmp_nodes.push(next as Node);
            cur = next;
        }
    }
    flow
}

/// Whether a canonical fan query in `Q_n` with `k` targets fits the
/// [`FanCache`] key/entry encoding (one byte per sorted nonzero target).
#[inline]
fn cacheable(n: u32, k: usize) -> bool {
    n <= 8 && k <= 8
}

/// [`fan_paths_into`] with translation canonicalisation and memoisation.
///
/// The query is canonicalised by XOR-translating the source to 0 and
/// sorting the targets — an automorphism of `Q_n`, so the canonical
/// solution maps back exactly. Canonical solutions are looked up in (and
/// inserted into) `cache`; results are read back through
/// [`FanScratch::path`] in original target order, exactly as with
/// [`fan_paths_into`].
///
/// **Determinism contract:** for a given `(cube, s, targets)` the
/// resulting paths are byte-identical regardless of cache capacity,
/// contents, or hit/miss history. Misses always solve the *canonical*
/// query, so a later hit replays exactly what the miss produced. A
/// capacity-0 cache therefore serves as the reference "off" mode.
/// (Because of canonicalisation, individual paths may differ from the
/// direct [`fan_paths_into`] solve of the untranslated query — both are
/// valid minimum-total-length fans.)
///
/// Queries outside the cacheable regime (`n > 8`; never produced by the
/// HHC construction, whose son-cubes have `m ≤ 6`) skip canonicalisation
/// and solve directly.
pub fn fan_paths_cached(
    cube: &Cube,
    s: Node,
    targets: &[Node],
    scratch: &mut FanScratch,
    cache: &mut FanCache,
) -> Result<(), FanError> {
    let n = validate_and_index(cube, s, targets, scratch)?;
    let k = targets.len();
    if k == 0 {
        return Ok(());
    }
    if all_adjacent(s, targets) {
        write_direct_fan(s, targets, scratch);
        return Ok(());
    }
    if !cacheable(n, k) {
        solve_dinic(n, s, targets, scratch);
        return Ok(());
    }

    // Canonicalise: translate the source to 0 and sort the targets.
    // `canon[j] = (sorted canonical target, its original index)`.
    scratch.canon.clear();
    for (i, &t) in targets.iter().enumerate() {
        scratch.canon.push((t ^ s, i as u32));
    }
    scratch.canon.sort_unstable();
    let mut key = (n as u128) << 64;
    for (j, &(ct, _)) in scratch.canon.iter().enumerate() {
        key |= ct << (8 * j);
    }

    if let Some(e) = cache.get(key) {
        // Replay the canonical fan, translated back by `s`. The arena is
        // laid out in sorted-target order; `path_of_target` restores the
        // caller's order.
        for j in 0..k {
            let (a, b) = (e.offsets[j] as usize, e.offsets[j + 1] as usize);
            for &x in &e.nodes[a..b] {
                scratch.tmp_nodes.push(x as Node ^ s);
            }
            scratch.tmp_offsets.push(scratch.tmp_nodes.len() as u32);
        }
        scratch.path_of_target.resize(k, UNSET);
        for (j, &(_, i)) in scratch.canon.iter().enumerate() {
            scratch.path_of_target[i as usize] = j as u32;
        }
        scratch.metrics.cache_hits += 1;
        return Ok(());
    }
    scratch.metrics.cache_misses += 1;

    // Solve the canonical query: re-index `target_idx` for the
    // translated labels, then run the ordinary solver from source 0.
    scratch.target_idx.fill(UNSET);
    scratch.canon_nodes.clear();
    for (j, &(ct, _)) in scratch.canon.iter().enumerate() {
        scratch.canon_nodes.push(ct);
        scratch.target_idx[ct as usize] = j as u32;
    }
    let canon_nodes = std::mem::take(&mut scratch.canon_nodes);
    solve_dinic(n, 0, &canon_nodes, scratch);
    scratch.canon_nodes = canon_nodes;

    // Snapshot the canonical solution for the cache (sorted-target CSR,
    // byte labels) before de-canonicalising the arena in place.
    if cache.capacity() > 0 {
        let mut nodes = Vec::new();
        let mut offsets = Vec::with_capacity(k + 1);
        offsets.push(0u16);
        for j in 0..k {
            let p = scratch.path_of_target[j] as usize;
            let (a, b) = (
                scratch.tmp_offsets[p] as usize,
                scratch.tmp_offsets[p + 1] as usize,
            );
            nodes.extend(scratch.tmp_nodes[a..b].iter().map(|&x| x as u8));
            offsets.push(nodes.len() as u16);
        }
        cache.insert(
            key,
            FanEntry {
                nodes: nodes.into_boxed_slice(),
                offsets: offsets.into_boxed_slice(),
            },
        );
    }

    // De-canonicalise: translate every arena node back, and remap
    // `path_of_target` from canonical (sorted) indices to original ones.
    for x in &mut scratch.tmp_nodes {
        *x ^= s;
    }
    scratch.pot_tmp.clear();
    scratch.pot_tmp.extend_from_slice(&scratch.path_of_target);
    for (j, &(_, i)) in scratch.canon.iter().enumerate() {
        scratch.path_of_target[i as usize] = scratch.pot_tmp[j];
    }
    Ok(())
}

/// Checks fan validity: `paths[i]` runs `s → targets[i]`, each simple,
/// pairwise sharing only `s`.
pub fn check_fan(
    cube: &Cube,
    s: Node,
    targets: &[Node],
    paths: &[Vec<Node>],
) -> Result<(), String> {
    if paths.len() != targets.len() {
        return Err(format!(
            "expected {} paths, got {}",
            targets.len(),
            paths.len()
        ));
    }
    let mut used = std::collections::HashSet::new();
    for (i, p) in paths.iter().enumerate() {
        if p.first() != Some(&s) || p.last() != Some(&targets[i]) {
            return Err(format!("path {i}: wrong endpoints"));
        }
        let mut own = std::collections::HashSet::new();
        for w in p.windows(2) {
            if cube.distance(w[0], w[1]) != 1 {
                return Err(format!("path {i}: non-edge"));
            }
        }
        for &x in p {
            if !own.insert(x) {
                return Err(format!("path {i}: revisit"));
            }
        }
        for &x in &p[1..] {
            if !used.insert(x) {
                return Err(format!("paths share node {x:#x} beyond source"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_to_all_neighbors() {
        let q = Cube::new(4).unwrap();
        let s = 0b0101u128;
        let targets: Vec<Node> = q.neighbors(s).collect();
        let fan = fan_paths(&q, s, &targets).unwrap();
        check_fan(&q, s, &targets, &fan).unwrap();
        // Each neighbour is reachable directly; minimum fan uses the edges.
        assert!(fan.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn fan_to_far_targets() {
        let q = Cube::new(4).unwrap();
        let s = 0u128;
        let targets = vec![0b1111u128, 0b1110, 0b0111, 0b1011];
        let fan = fan_paths(&q, s, &targets).unwrap();
        check_fan(&q, s, &targets, &fan).unwrap();
    }

    #[test]
    fn single_target_is_a_path() {
        let q = Cube::new(3).unwrap();
        let fan = fan_paths(&q, 0, &[0b111]).unwrap();
        check_fan(&q, 0, &[0b111], &fan).unwrap();
        assert_eq!(fan[0].len(), 4); // shortest: 3 hops
    }

    #[test]
    fn empty_targets_empty_fan() {
        let q = Cube::new(3).unwrap();
        assert!(fan_paths(&q, 0, &[]).unwrap().is_empty());
    }

    #[test]
    fn rejects_duplicate_or_source_targets() {
        let q = Cube::new(3).unwrap();
        assert_eq!(fan_paths(&q, 0, &[1, 1]), Err(FanError::BadTargets));
        assert_eq!(fan_paths(&q, 0, &[0]), Err(FanError::BadTargets));
    }

    #[test]
    fn rejects_too_many_targets() {
        let q = Cube::new(2).unwrap();
        let err = fan_paths(&q, 0, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, FanError::TooManyTargets { .. }));
    }

    #[test]
    fn rejects_big_cube() {
        let q = Cube::new(17).unwrap();
        assert_eq!(fan_paths(&q, 0, &[1]), Err(FanError::CubeTooLarge(17)));
    }

    #[test]
    fn exhaustive_q3_every_target_set() {
        // All subsets of size ≤ 3 of Q_3 \ {s}, for every s.
        let q = Cube::new(3).unwrap();
        let nodes: Vec<Node> = (0..8).collect();
        for &s in &nodes {
            let others: Vec<Node> = nodes.iter().copied().filter(|&x| x != s).collect();
            for mask in 1u32..(1 << others.len()) {
                if mask.count_ones() > 3 {
                    continue;
                }
                let targets: Vec<Node> = others
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &t)| t)
                    .collect();
                let fan = fan_paths(&q, s, &targets).unwrap();
                check_fan(&q, s, &targets, &fan)
                    .unwrap_or_else(|e| panic!("s={s} targets={targets:?}: {e}"));
            }
        }
    }

    #[test]
    fn metrics_count_queries_and_builds() {
        let q = Cube::new(4).unwrap();
        let mut sc = FanScratch::new();
        let s = 0u128;
        let neighbors: Vec<Node> = q.neighbors(s).collect();
        fan_paths_into(&q, s, &neighbors, &mut sc).unwrap();
        fan_paths_into(&q, s, &[0b1111], &mut sc).unwrap();
        let m = sc.metrics();
        assert_eq!(m.queries, 2);
        assert_eq!(m.targets_requested, 5);
        // All 4 neighbours seed directly; the far target seeds nothing.
        assert_eq!(m.seeded_direct, 4);
        // The all-neighbour query took the combinatorial fast path, so
        // only the far query forced a network build.
        assert_eq!(m.fast_path, 1);
        assert_eq!(m.network_builds, 1);
        // The far query needed the solver: at least one BFS recorded.
        assert!(sc.solver_stats().bfs_passes >= 1);
        // Rejected calls are not counted as queries.
        assert!(fan_paths_into(&q, s, &[s], &mut sc).is_err());
        assert_eq!(sc.metrics().queries, 2);
        sc.reset_metrics();
        assert_eq!(sc.metrics(), FanMetrics::default());
        assert_eq!(sc.solver_stats(), graphs::DinicStats::default());
    }

    /// Runs the general solver on a query the public entry points would
    /// answer via the combinatorial fast path.
    fn dinic_reference(q: &Cube, s: Node, targets: &[Node], sc: &mut FanScratch) {
        let n = validate_and_index(q, s, targets, sc).unwrap();
        solve_dinic(n, s, targets, sc);
    }

    #[test]
    fn fast_path_agrees_with_dinic_exhaustively() {
        // Every source and every non-empty neighbour subset of Q_2..Q_4:
        // the direct fan must match the flow solver path-for-path.
        for n in 2u32..=4 {
            let q = Cube::new(n).unwrap();
            let mut fast = FanScratch::new();
            let mut oracle = FanScratch::new();
            for s in 0..(1u128 << n) {
                let nbrs: Vec<Node> = q.neighbors(s).collect();
                for mask in 1u32..(1 << nbrs.len()) {
                    let targets: Vec<Node> = nbrs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| mask >> i & 1 == 1)
                        .map(|(_, &t)| t)
                        .collect();
                    fan_paths_into(&q, s, &targets, &mut fast).unwrap();
                    dinic_reference(&q, s, &targets, &mut oracle);
                    assert_eq!(fast.num_paths(), oracle.num_paths());
                    for i in 0..targets.len() {
                        assert_eq!(
                            fast.path(i),
                            oracle.path(i),
                            "n={n} s={s} targets={targets:?} path {i}"
                        );
                    }
                }
            }
            // The fast path never touched the solver.
            assert_eq!(fast.metrics().network_builds, 0);
            assert!(oracle.metrics().network_builds >= 1);
        }
    }

    #[test]
    fn cached_is_deterministic_and_hits_on_translation() {
        // Same canonical class (translated sources, permuted targets):
        // one miss, then hits; every answer identical to the capacity-0
        // reference and a valid fan.
        let q = Cube::new(4).unwrap();
        let mut warm = FanScratch::new();
        let mut cold = FanScratch::new();
        let mut cache = FanCache::new(64);
        let mut off = FanCache::new(0);
        let base: Vec<Node> = vec![0b1111, 0b0111, 0b1110];
        for s in 0..16u128 {
            let targets: Vec<Node> = base.iter().map(|&t| t ^ s).collect();
            let mut rev = targets.clone();
            rev.reverse();
            for t in [&targets, &rev] {
                fan_paths_cached(&q, s, t, &mut warm, &mut cache).unwrap();
                fan_paths_cached(&q, s, t, &mut cold, &mut off).unwrap();
                assert_eq!(warm.num_paths(), cold.num_paths());
                let fan: Vec<Vec<Node>> = (0..t.len()).map(|i| warm.path(i).to_vec()).collect();
                for i in 0..t.len() {
                    assert_eq!(warm.path(i), cold.path(i), "s={s} targets={t:?} path {i}");
                }
                check_fan(&q, s, t, &fan).unwrap();
            }
        }
        let m = warm.metrics();
        assert_eq!(m.cache_misses, 1, "one canonical class ⇒ one solve");
        assert_eq!(m.cache_hits, 31);
        assert_eq!(cold.metrics().cache_hits, 0);
        assert_eq!(cold.metrics().cache_misses, 32);
        assert!(off.is_empty());
    }

    #[test]
    fn cached_survives_eviction_pressure() {
        // A capacity-1 cache sweeps constantly; answers must not change.
        let q = Cube::new(5).unwrap();
        let mut tiny_sc = FanScratch::new();
        let mut off_sc = FanScratch::new();
        let mut tiny = FanCache::new(1);
        let mut off = FanCache::new(0);
        let mut state = 0xdeadbeefcafef00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..300 {
            let s = (next() % 32) as Node;
            let k = (next() % 5 + 1) as usize;
            let mut targets = Vec::new();
            while targets.len() < k {
                let t = (next() % 32) as Node;
                if t != s && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            fan_paths_cached(&q, s, &targets, &mut tiny_sc, &mut tiny).unwrap();
            fan_paths_cached(&q, s, &targets, &mut off_sc, &mut off).unwrap();
            for i in 0..k {
                assert_eq!(tiny_sc.path(i), off_sc.path(i), "s={s} targets={targets:?}");
            }
        }
        assert!(tiny.sweeps() > 0, "capacity 1 must sweep under this load");
        assert!(tiny.len() <= 2);
    }

    #[test]
    fn avoiding_with_no_forbidden_matches_plain() {
        // forbidden == 0 must be byte-identical to the plain entry point.
        let q = Cube::new(3).unwrap();
        let nodes: Vec<Node> = (0..8).collect();
        let mut plain = FanScratch::new();
        let mut avoid = FanScratch::new();
        for &s in &nodes {
            let others: Vec<Node> = nodes.iter().copied().filter(|&x| x != s).collect();
            for mask in 1u32..(1 << others.len()) {
                if mask.count_ones() > 3 {
                    continue;
                }
                let targets: Vec<Node> = others
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &t)| t)
                    .collect();
                fan_paths_into(&q, s, &targets, &mut plain).unwrap();
                let served = fan_paths_avoiding(&q, s, &targets, 0, &mut avoid).unwrap();
                assert_eq!(served, targets.len());
                for i in 0..targets.len() {
                    assert!(avoid.target_served(i));
                    assert_eq!(plain.path(i), avoid.path(i), "s={s} targets={targets:?}");
                }
            }
        }
    }

    #[test]
    fn avoiding_respects_forbidden_nodes() {
        // Random queries with random fault masks: every served path must
        // be a valid fan path that visits no forbidden node, and when the
        // remaining connectivity permits, all targets must be served.
        let q = Cube::new(5).unwrap();
        let mut sc = FanScratch::new();
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let s = (next() % 32) as Node;
            let k = (next() % 5 + 1) as usize;
            let mut targets = Vec::new();
            while targets.len() < k {
                let t = (next() % 32) as Node;
                if t != s && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            // Up to 4 faults, never on the source.
            let mut forbidden = 0u64;
            for _ in 0..(next() % 5) {
                let v = next() % 32;
                if v != s as u64 {
                    forbidden |= 1 << v;
                }
            }
            let served = fan_paths_avoiding(&q, s, &targets, forbidden, &mut sc).unwrap();
            let mut seen = std::collections::HashSet::new();
            let mut n_served = 0;
            for (i, &t) in targets.iter().enumerate() {
                if !sc.target_served(i) {
                    continue;
                }
                n_served += 1;
                let p = sc.path(i);
                assert_eq!(p.first(), Some(&s));
                assert_eq!(p.last(), Some(&t));
                for w in p.windows(2) {
                    assert_eq!(q.distance(w[0], w[1]), 1);
                }
                for &x in p {
                    assert_eq!(forbidden >> x & 1, 0, "path visits forbidden node {x:#x}");
                }
                for &x in &p[1..] {
                    assert!(seen.insert(x), "paths share node {x:#x}");
                }
            }
            assert_eq!(served, n_served);
            // With ≤ 4 faults in a 5-connected cube and no faulty
            // endpoints, Menger still guarantees min(k, 5 - f) paths.
            let f = forbidden.count_ones() as usize;
            let fault_free_targets = targets.iter().filter(|&&t| forbidden >> t & 1 == 0).count();
            assert!(
                served >= fault_free_targets.min(5 - f),
                "served {served} < guaranteed {} (s={s} targets={targets:?} forbidden={forbidden:#x})",
                fault_free_targets.min(5 - f)
            );
        }
    }

    #[test]
    fn avoiding_forbidden_target_is_unserved() {
        let q = Cube::new(3).unwrap();
        let mut sc = FanScratch::new();
        let targets = vec![0b001u128, 0b110];
        let served = fan_paths_avoiding(&q, 0, &targets, 1 << 0b110, &mut sc).unwrap();
        assert_eq!(served, 1);
        assert!(sc.target_served(0));
        assert!(!sc.target_served(1));
        assert_eq!(sc.path(0), &[0, 0b001]);
    }

    #[test]
    fn random_fans_q6() {
        // Deterministic pseudo-random target sets in the largest son-cube.
        let q = Cube::new(6).unwrap();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let s = (next() % 64) as Node;
            let k = (next() % 6 + 1) as usize;
            let mut targets = Vec::new();
            while targets.len() < k {
                let t = (next() % 64) as Node;
                if t != s && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            let fan = fan_paths(&q, s, &targets).unwrap();
            check_fan(&q, s, &targets, &fan).unwrap();
        }
    }
}
