//! Disjoint fans in `Q_n`: paths from one source to many targets,
//! pairwise vertex-disjoint except at the source.
//!
//! Menger's fan lemma guarantees a fan to any `k ≤ n` distinct targets.
//! The HHC construction needs fans only *inside a son-cube* (`Q_m`, at most
//! `2^m ≤ 64` nodes for every supported `m`), so an exact max-flow
//! formulation is both simple and effectively free; it also returns a
//! *minimum total length* fan, because each augmenting BFS phase of Dinic
//! saturates shortest augmenting paths first on this unit-capacity network.
//!
//! Flow model: vertex split (`x_in → x_out`, capacity 1; source unbounded),
//! each cube edge in both directions with capacity 1, and one arc
//! `t_out → sink` per target. Max-flow equals the fan size; extraction
//! walks positive-flow arcs from the source.

use crate::cube::{Cube, CubeError, Node};
use graphs::Dinic;

/// Errors from fan construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FanError {
    /// Underlying cube error (bad dimension / label).
    Cube(CubeError),
    /// Targets must be distinct and different from the source.
    BadTargets,
    /// More targets than the cube's connectivity can support.
    TooManyTargets { targets: usize, dim: u32 },
    /// Fans are computed by flow on the materialised cube; `n ≤ 16` only.
    CubeTooLarge(u32),
}

impl std::fmt::Display for FanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FanError::Cube(e) => write!(f, "{e}"),
            FanError::BadTargets => write!(f, "targets must be distinct and ≠ source"),
            FanError::TooManyTargets { targets, dim } => {
                write!(f, "{targets} targets exceed connectivity {dim}")
            }
            FanError::CubeTooLarge(n) => write!(f, "fan computation limited to n ≤ 16, got {n}"),
        }
    }
}

impl std::error::Error for FanError {}

impl From<CubeError> for FanError {
    fn from(e: CubeError) -> Self {
        FanError::Cube(e)
    }
}

#[inline]
fn v_in(v: u32) -> u32 {
    2 * v
}
#[inline]
fn v_out(v: u32) -> u32 {
    2 * v + 1
}

/// Computes a fan: one path from `s` to each target, pairwise
/// vertex-disjoint except at `s`. Paths are returned in target order
/// (`paths[i]` ends at `targets[i]`).
///
/// Requires `targets.len() ≤ n` (fan lemma bound) and `n ≤ 16`
/// (the cube is materialised as a flow network of `2^{n+1} + 1` nodes).
///
/// # Examples
/// ```
/// use hypercube::{Cube, fan};
/// let q = Cube::new(3).unwrap();
/// let fan = fan::fan_paths(&q, 0b000, &[0b011, 0b101, 0b110]).unwrap();
/// assert_eq!(fan.len(), 3);
/// fan::check_fan(&q, 0b000, &[0b011, 0b101, 0b110], &fan).unwrap();
/// ```
pub fn fan_paths(cube: &Cube, s: Node, targets: &[Node]) -> Result<Vec<Vec<Node>>, FanError> {
    let n = cube.dim();
    if n > 16 {
        return Err(FanError::CubeTooLarge(n));
    }
    cube.check(s)?;
    for &t in targets {
        cube.check(t)?;
    }
    {
        let mut set = std::collections::HashSet::new();
        for &t in targets {
            if t == s || !set.insert(t) {
                return Err(FanError::BadTargets);
            }
        }
    }
    if targets.len() > n as usize {
        return Err(FanError::TooManyTargets {
            targets: targets.len(),
            dim: n,
        });
    }
    if targets.is_empty() {
        return Ok(Vec::new());
    }

    let num = 1u32 << n;
    let sink = 2 * num;
    let mut d = Dinic::new(sink as usize + 1);
    let s32 = s as u32;
    for v in 0..num {
        let cap = if v == s32 { u32::MAX / 2 } else { 1 };
        d.add_edge(v_in(v), v_out(v), cap);
    }
    for v in 0..num {
        for dim in 0..n {
            // Add each undirected edge once, as two directed arcs.
            let w = v ^ (1u32 << dim);
            if v < w {
                d.add_edge(v_out(v), v_in(w), 1);
                d.add_edge(v_out(w), v_in(v), 1);
            }
        }
    }
    // Target index by node id, for terminal arcs.
    let mut terminal_arc = std::collections::HashMap::new();
    for (i, &t) in targets.iter().enumerate() {
        let aid = d.add_edge(v_out(t as u32), sink, 1);
        terminal_arc.insert(t as u32, (i, aid));
    }

    let flow = d.max_flow(v_in(s32), sink);
    assert_eq!(
        flow as usize,
        targets.len(),
        "fan lemma violated: flow {flow} < {} targets (bug)",
        targets.len()
    );

    // Decompose: record remaining flow per (from, to) node pair, then walk.
    let mut remaining: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
    for v in 0..=sink {
        for (aid, to) in d.flow_arcs_from(v) {
            *remaining.entry((v, to)).or_insert(0) += d.flow_on(aid);
        }
    }
    let mut take = |from: u32, to: u32| -> bool {
        match remaining.get_mut(&(from, to)) {
            Some(c) if *c > 0 => {
                *c -= 1;
                true
            }
            _ => false,
        }
    };

    let mut paths: Vec<Option<Vec<Node>>> = vec![None; targets.len()];
    for _ in 0..flow {
        let mut path = vec![s];
        let mut cur = s32;
        loop {
            let _ = take(v_in(cur), v_out(cur));
            // Terminate here if this node's terminal arc still carries flow
            // (a target is never a through-node: its vertex capacity is 1).
            if let Some(&(idx, _)) = terminal_arc.get(&cur) {
                if take(v_out(cur), sink) {
                    assert!(paths[idx].is_none(), "target reached twice");
                    paths[idx] = Some(path);
                    break;
                }
            }
            let next = (0..n)
                .map(|dim| cur ^ (1u32 << dim))
                .find(|&w| take(v_out(cur), v_in(w)))
                .expect("flow decomposition stuck (bug)");
            path.push(next as Node);
            cur = next;
        }
    }
    Ok(paths.into_iter().map(|p| p.expect("missing fan path")).collect())
}

/// Checks fan validity: `paths[i]` runs `s → targets[i]`, each simple,
/// pairwise sharing only `s`.
pub fn check_fan(
    cube: &Cube,
    s: Node,
    targets: &[Node],
    paths: &[Vec<Node>],
) -> Result<(), String> {
    if paths.len() != targets.len() {
        return Err(format!(
            "expected {} paths, got {}",
            targets.len(),
            paths.len()
        ));
    }
    let mut used = std::collections::HashSet::new();
    for (i, p) in paths.iter().enumerate() {
        if p.first() != Some(&s) || p.last() != Some(&targets[i]) {
            return Err(format!("path {i}: wrong endpoints"));
        }
        let mut own = std::collections::HashSet::new();
        for w in p.windows(2) {
            if cube.distance(w[0], w[1]) != 1 {
                return Err(format!("path {i}: non-edge"));
            }
        }
        for &x in p {
            if !own.insert(x) {
                return Err(format!("path {i}: revisit"));
            }
        }
        for &x in &p[1..] {
            if !used.insert(x) {
                return Err(format!("paths share node {x:#x} beyond source"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_to_all_neighbors() {
        let q = Cube::new(4).unwrap();
        let s = 0b0101u128;
        let targets: Vec<Node> = q.neighbors(s).collect();
        let fan = fan_paths(&q, s, &targets).unwrap();
        check_fan(&q, s, &targets, &fan).unwrap();
        // Each neighbour is reachable directly; minimum fan uses the edges.
        assert!(fan.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn fan_to_far_targets() {
        let q = Cube::new(4).unwrap();
        let s = 0u128;
        let targets = vec![0b1111u128, 0b1110, 0b0111, 0b1011];
        let fan = fan_paths(&q, s, &targets).unwrap();
        check_fan(&q, s, &targets, &fan).unwrap();
    }

    #[test]
    fn single_target_is_a_path() {
        let q = Cube::new(3).unwrap();
        let fan = fan_paths(&q, 0, &[0b111]).unwrap();
        check_fan(&q, 0, &[0b111], &fan).unwrap();
        assert_eq!(fan[0].len(), 4); // shortest: 3 hops
    }

    #[test]
    fn empty_targets_empty_fan() {
        let q = Cube::new(3).unwrap();
        assert!(fan_paths(&q, 0, &[]).unwrap().is_empty());
    }

    #[test]
    fn rejects_duplicate_or_source_targets() {
        let q = Cube::new(3).unwrap();
        assert_eq!(fan_paths(&q, 0, &[1, 1]), Err(FanError::BadTargets));
        assert_eq!(fan_paths(&q, 0, &[0]), Err(FanError::BadTargets));
    }

    #[test]
    fn rejects_too_many_targets() {
        let q = Cube::new(2).unwrap();
        let err = fan_paths(&q, 0, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, FanError::TooManyTargets { .. }));
    }

    #[test]
    fn rejects_big_cube() {
        let q = Cube::new(17).unwrap();
        assert_eq!(fan_paths(&q, 0, &[1]), Err(FanError::CubeTooLarge(17)));
    }

    #[test]
    fn exhaustive_q3_every_target_set() {
        // All subsets of size ≤ 3 of Q_3 \ {s}, for every s.
        let q = Cube::new(3).unwrap();
        let nodes: Vec<Node> = (0..8).collect();
        for &s in &nodes {
            let others: Vec<Node> = nodes.iter().copied().filter(|&x| x != s).collect();
            for mask in 1u32..(1 << others.len()) {
                if mask.count_ones() > 3 {
                    continue;
                }
                let targets: Vec<Node> = others
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &t)| t)
                    .collect();
                let fan = fan_paths(&q, s, &targets).unwrap();
                check_fan(&q, s, &targets, &fan)
                    .unwrap_or_else(|e| panic!("s={s} targets={targets:?}: {e}"));
            }
        }
    }

    #[test]
    fn random_fans_q6() {
        // Deterministic pseudo-random target sets in the largest son-cube.
        let q = Cube::new(6).unwrap();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let s = (next() % 64) as Node;
            let k = (next() % 6 + 1) as usize;
            let mut targets = Vec::new();
            while targets.len() < k {
                let t = (next() % 64) as Node;
                if t != s && !targets.contains(&t) {
                    targets.push(t);
                }
            }
            let fan = fan_paths(&q, s, &targets).unwrap();
            check_fan(&q, s, &targets, &fan).unwrap();
        }
    }
}
