//! Classic embeddings into `Q_n` (extension features).
//!
//! * [`hamiltonian_ring`] — the Gray sequence as a dilation-1 embedding of
//!   the `2^n`-node ring (a Hamiltonian cycle of `Q_n`);
//! * [`binomial_tree_parent`] — the binomial spanning tree `B_n` rooted at
//!   0 (parent clears the highest set bit), the backbone of one-to-all
//!   broadcast in `log n` rounds;
//! * [`broadcast_schedule`] — the `n`-round recursive-doubling broadcast
//!   derived from `B_n`.

use crate::cube::{Cube, CubeError, Node};
use crate::gray::gray;

/// A Hamiltonian path of `Q_n` from `u` to `v` (Havel's construction).
///
/// Such a path exists iff `H(u, v)` is odd: `Q_n` is bipartite by parity
/// and a Hamiltonian path uses `2^n − 1` (odd) edges, so the endpoints
/// must lie in different parity classes; Havel showed this is sufficient.
/// Errors with [`CubeError::EqualNodes`] when `H(u, v)` is even
/// (including `u == v`). Guarded to `n ≤ 20` (the output has `2^n`
/// nodes).
pub fn hamiltonian_path(cube: &Cube, u: Node, v: Node) -> Result<Vec<Node>, CubeError> {
    let n = cube.dim();
    if n > 20 {
        return Err(CubeError::TooLargeToMaterialize(n));
    }
    cube.check(u)?;
    cube.check(v)?;
    if cube.distance(u, v).is_multiple_of(2) {
        // Even distance (or equal): no Hamiltonian path can exist.
        return Err(CubeError::EqualNodes);
    }
    Ok(ham_rec(n, u, v))
}

/// Recursive core: `H(u, v)` odd within `Q_n` labels.
fn ham_rec(n: u32, u: Node, v: Node) -> Vec<Node> {
    if n == 1 {
        return vec![u, v];
    }
    // Split along a dimension where the endpoints differ; recurse in u's
    // half up to a pivot x adjacent-in-parity, cross, and finish in v's
    // half. Parity bookkeeping: H_sub(u, x) = 1 (odd) forces
    // H_sub(x⊕e_d, v) odd because H_sub(u, v) is even.
    let d = (u ^ v).trailing_zeros();
    let j = if d == 0 { 1 } else { 0 };
    let x = u ^ (1u128 << j);
    let left = ham_rec(n - 1, compress(u, d), compress(x, d));
    let right = ham_rec(n - 1, compress(x, d), compress(v, d));
    let u_side = u >> d & 1;
    let mut path = Vec::with_capacity(1 << n);
    path.extend(left.into_iter().map(|w| expand(w, d, u_side)));
    path.extend(right.into_iter().map(|w| expand(w, d, 1 - u_side)));
    path
}

/// Removes bit `d` from a label (bits above `d` shift down).
#[inline]
fn compress(w: Node, d: u32) -> Node {
    let low = w & ((1u128 << d) - 1);
    let high = w >> (d + 1);
    high << d | low
}

/// Re-inserts bit `d` with value `bit` into a compressed label.
#[inline]
fn expand(w: Node, d: u32, bit: u128) -> Node {
    let low = w & ((1u128 << d) - 1);
    let high = w >> d;
    high << (d + 1) | bit << d | low
}

/// The vertices of `Q_n` in Hamiltonian-cycle (Gray) order. `n ≤ 20`.
pub fn hamiltonian_ring(cube: &Cube) -> Result<Vec<Node>, CubeError> {
    let n = cube.dim();
    if n > 20 {
        return Err(CubeError::TooLargeToMaterialize(n));
    }
    Ok((0..1u64 << n).map(|i| gray(i) as Node).collect())
}

/// Parent of `v` in the binomial spanning tree rooted at `root`:
/// clear the highest bit in which `v` differs from the root.
/// Returns `None` for the root itself.
pub fn binomial_tree_parent(cube: &Cube, root: Node, v: Node) -> Option<Node> {
    debug_assert!(cube.contains(root) && cube.contains(v));
    let x = v ^ root;
    if x == 0 {
        None
    } else {
        let h = 127 - x.leading_zeros();
        Some(v ^ (1u128 << h))
    }
}

/// Depth of `v` in the binomial tree rooted at `root`
/// (= number of bits in which it differs from the root).
pub fn binomial_tree_depth(cube: &Cube, root: Node, v: Node) -> u32 {
    cube.distance(root, v)
}

/// The recursive-doubling broadcast schedule from `root`: in round `r`
/// (`0 ≤ r < n`), every node that already holds the message sends it
/// across dimension `n−1−r`. Returns, per round, the list of
/// `(sender, receiver)` pairs. `n ≤ 16` (the schedule is enumerated).
pub fn broadcast_schedule(cube: &Cube, root: Node) -> Result<Vec<Vec<(Node, Node)>>, CubeError> {
    let n = cube.dim();
    if n > 16 {
        return Err(CubeError::TooLargeToMaterialize(n));
    }
    cube.check(root)?;
    let mut holders = vec![root];
    let mut rounds = Vec::with_capacity(n as usize);
    for r in 0..n {
        let d = n - 1 - r;
        let mut round = Vec::with_capacity(holders.len());
        let mut new_holders = Vec::with_capacity(holders.len());
        for &h in &holders {
            let recv = cube.flip(h, d);
            round.push((h, recv));
            new_holders.push(recv);
        }
        holders.extend(new_holders);
        rounds.push(round);
    }
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_hamiltonian_cycle() {
        for n in 1..=8u32 {
            let q = Cube::new(n).unwrap();
            let ring = hamiltonian_ring(&q).unwrap();
            assert_eq!(ring.len() as u128, q.num_nodes());
            let set: std::collections::HashSet<_> = ring.iter().collect();
            assert_eq!(set.len(), ring.len());
            for i in 0..ring.len() {
                let a = ring[i];
                let b = ring[(i + 1) % ring.len()];
                assert_eq!(q.distance(a, b), 1, "n={n} break at {i}");
            }
        }
    }

    #[test]
    fn binomial_parent_walk_reaches_root() {
        let q = Cube::new(7).unwrap();
        let root = 0b1010101u128;
        for v in 0..128u128 {
            let mut cur = v;
            let mut steps = 0;
            while let Some(p) = binomial_tree_parent(&q, root, cur) {
                assert_eq!(q.distance(cur, p), 1);
                assert!(q.distance(p, root) < q.distance(cur, root));
                cur = p;
                steps += 1;
            }
            assert_eq!(cur, root);
            assert_eq!(steps, binomial_tree_depth(&q, root, v));
        }
    }

    #[test]
    fn root_has_no_parent() {
        let q = Cube::new(4).unwrap();
        assert_eq!(binomial_tree_parent(&q, 5, 5), None);
    }

    #[test]
    fn broadcast_covers_everyone_in_n_rounds() {
        for n in 1..=8u32 {
            let q = Cube::new(n).unwrap();
            let root = (n as u128 * 3) % q.num_nodes();
            let rounds = broadcast_schedule(&q, root).unwrap();
            assert_eq!(rounds.len() as u32, n);
            let mut holders = std::collections::HashSet::from([root]);
            for (r, round) in rounds.iter().enumerate() {
                assert_eq!(round.len(), 1 << r, "round {r} sender count");
                for &(s, t) in round {
                    assert!(holders.contains(&s), "sender without message");
                    assert_eq!(q.distance(s, t), 1);
                    assert!(holders.insert(t), "duplicate delivery to {t}");
                }
            }
            assert_eq!(holders.len() as u128, q.num_nodes());
        }
    }

    #[test]
    fn guards_on_large_cubes() {
        assert!(hamiltonian_ring(&Cube::new(21).unwrap()).is_err());
        assert!(broadcast_schedule(&Cube::new(17).unwrap(), 0).is_err());
        assert!(hamiltonian_path(&Cube::new(21).unwrap(), 0, 1).is_err());
    }

    fn check_ham_path(q: &Cube, p: &[Node], u: Node, v: Node) {
        assert_eq!(p.len() as u128, q.num_nodes(), "must visit every node");
        assert_eq!(*p.first().unwrap(), u);
        assert_eq!(*p.last().unwrap(), v);
        let set: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(set.len(), p.len(), "repeat visit");
        for w in p.windows(2) {
            assert_eq!(q.distance(w[0], w[1]), 1, "non-edge step");
        }
    }

    #[test]
    fn hamiltonian_path_exhaustive_small() {
        for n in 1..=4u32 {
            let q = Cube::new(n).unwrap();
            for u in 0..q.num_nodes() {
                for v in 0..q.num_nodes() {
                    if q.distance(u, v) % 2 == 1 {
                        let p = hamiltonian_path(&q, u, v).unwrap();
                        check_ham_path(&q, &p, u, v);
                    } else {
                        assert!(hamiltonian_path(&q, u, v).is_err(), "even pair accepted");
                    }
                }
            }
        }
    }

    #[test]
    fn hamiltonian_path_q10_spot() {
        let q = Cube::new(10).unwrap();
        for (u, v) in [(0u128, 1u128), (0b1111100000, 0b0000011111), (3, 1020)] {
            if q.distance(u, v) % 2 == 1 {
                let p = hamiltonian_path(&q, u, v).unwrap();
                check_ham_path(&q, &p, u, v);
            }
        }
        // Antipodal pair in odd dimension... Q_10 antipodes have even
        // distance 10, so use distance 9.
        let u = 0u128;
        let v = (1u128 << 9) - 1;
        let p = hamiltonian_path(&q, u, v).unwrap();
        check_ham_path(&q, &p, u, v);
    }

    #[test]
    fn compress_expand_roundtrip() {
        for w in 0..64u128 {
            for d in 0..6u32 {
                let c = compress(w, d);
                let bit = w >> d & 1;
                assert_eq!(expand(c, d, bit), w);
            }
        }
    }
}
