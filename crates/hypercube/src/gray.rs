//! Binary reflected Gray codes.
//!
//! The Gray sequence `g(0), g(1), …, g(2^m − 1)` visits every vertex of
//! `Q_m` with consecutive entries differing in exactly one bit, and wraps
//! around (`g(2^m − 1)` and `g(0)` also differ in one bit) — a Hamiltonian
//! cycle. The HHC disjoint-path construction orders its external crossings
//! along this cycle so that hopping from one crossing coordinate to the
//! next inside a son-cube is cheap; the total intra-cube walk over a whole
//! crossing sequence telescopes to at most one lap of the cycle, `2^m`
//! steps, instead of `k·m` for an arbitrary order (ablation F5 quantifies
//! the difference).

/// The `i`-th binary reflected Gray code.
///
/// # Examples
/// ```
/// assert_eq!((0..4).map(hypercube::gray::gray).collect::<Vec<_>>(), [0, 1, 3, 2]);
/// ```
#[inline]
pub fn gray(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// Inverse of [`gray`]: the rank of a code word in the Gray sequence.
#[inline]
pub fn gray_rank(mut g: u64) -> u64 {
    let mut i = 0u64;
    while g != 0 {
        i ^= g;
        g >>= 1;
    }
    i
}

/// The full Gray sequence for `m`-bit words (length `2^m`, `m ≤ 20`).
pub fn gray_sequence(m: u32) -> Vec<u64> {
    assert!(m <= 20, "gray_sequence: m too large to enumerate");
    (0..1u64 << m).map(gray).collect()
}

/// Sorts `positions` (distinct `m`-bit values) into the cyclic order in
/// which one lap of the Gray cycle visits them, starting from the first
/// visited at-or-after the Gray rank of `anchor`.
///
/// Walking the returned order costs at most `2^m` intra-cube steps in
/// total: the Hamming distance between cyclically consecutive entries is
/// at most the number of Gray steps between them, and those gaps sum to
/// one full lap.
pub fn sort_along_gray_cycle(positions: &[u64], m: u32, anchor: u64) -> Vec<u64> {
    assert!(m <= 63);
    let period = 1u64 << m;
    let anchor_rank = gray_rank(anchor);
    let mut keyed: Vec<(u64, u64)> = positions
        .iter()
        .map(|&p| {
            debug_assert!(p < period, "position {p} not an {m}-bit value");
            let r = gray_rank(p);
            // Cyclic distance from the anchor's rank, so the order starts
            // at the anchor's position on the cycle.
            ((r + period - anchor_rank) % period, p)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gray_first_values() {
        let seq: Vec<u64> = (0..8).map(gray).collect();
        assert_eq!(seq, vec![0, 1, 3, 2, 6, 7, 5, 4]);
    }

    #[test]
    fn gray_rank_inverts_gray() {
        for i in 0..1u64 << 12 {
            assert_eq!(gray_rank(gray(i)), i);
        }
    }

    #[test]
    fn sequence_is_hamiltonian_cycle() {
        for m in 1..=8u32 {
            let seq = gray_sequence(m);
            assert_eq!(seq.len(), 1 << m);
            let mut seen = std::collections::HashSet::new();
            for &v in &seq {
                assert!(seen.insert(v), "repeat in Gray sequence");
            }
            for i in 0..seq.len() {
                let a = seq[i];
                let b = seq[(i + 1) % seq.len()];
                assert_eq!((a ^ b).count_ones(), 1, "non-adjacent step at {i}");
            }
        }
    }

    #[test]
    fn cycle_order_starts_at_anchor_when_present() {
        let m = 3;
        let pos = [0u64, 3, 6, 5];
        let anchor = 6u64;
        let order = sort_along_gray_cycle(&pos, m, anchor);
        assert_eq!(order[0], 6);
        assert_eq!(order.len(), 4);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        let mut expect = pos.to_vec();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn cycle_order_total_walk_bounded_by_one_lap() {
        // Sum of Hamming gaps around the ordered cycle ≤ 2^m.
        for m in 2..=6u32 {
            let all: Vec<u64> = (0..1u64 << m).step_by(3).collect();
            let order = sort_along_gray_cycle(&all, m, 0);
            let total: u32 = (0..order.len())
                .map(|i| {
                    let a = order[i];
                    let b = order[(i + 1) % order.len()];
                    (a ^ b).count_ones()
                })
                .sum();
            assert!(
                total <= 1 << m,
                "m={m}: cyclic walk {total} exceeds one lap {}",
                1 << m
            );
        }
    }

    #[test]
    fn anchor_between_positions_picks_next_on_cycle() {
        // Gray order for m=3: 0,1,3,2,6,7,5,4. Anchor=1 (rank 1) with
        // positions {0, 2}: rank(2)=3, rank(0)=0 → 2 comes first.
        let order = sort_along_gray_cycle(&[0, 2], 3, 1);
        assert_eq!(order, vec![2, 0]);
    }

    #[test]
    fn empty_positions_ok() {
        assert!(sort_along_gray_cycle(&[], 4, 7).is_empty());
    }
}
