//! Shortest-path routing in `Q_n`.
//!
//! E-cube (dimension-ordered) routing resolves the differing dimensions in
//! ascending order; it is deadlock-free in wormhole networks and, more
//! importantly here, *deterministic*, which the simulator and the HHC
//! construction both rely on. `shortest_path_via_order` lets callers pick
//! the dimension order explicitly (the HHC construction uses Gray-adjacent
//! coordinate hops instead of ascending order).

use crate::cube::{Cube, Node};

/// The e-cube shortest path from `u` to `v`, inclusive of both endpoints.
/// Length is exactly `H(u, v) + 1` nodes.
pub fn shortest_path(cube: &Cube, u: Node, v: Node) -> Vec<Node> {
    let dims = cube.differing_dims(u, v);
    path_via_dims(u, &dims)
}

/// Shortest path from `u` to `v` resolving dimensions in the given order.
///
/// `order` must be exactly the set of differing dimensions of `(u, v)`
/// in some permutation.
///
/// # Panics
/// Panics (debug) if `order` is not a permutation of the differing dims.
pub fn shortest_path_via_order(cube: &Cube, u: Node, v: Node, order: &[u32]) -> Vec<Node> {
    debug_assert_eq!(
        {
            let mut o = order.to_vec();
            o.sort_unstable();
            o
        },
        cube.differing_dims(u, v),
        "order must permute the differing dimensions"
    );
    path_via_dims(u, order)
}

/// Walks from `u` flipping `dims` in sequence; returns the node list.
fn path_via_dims(u: Node, dims: &[u32]) -> Vec<Node> {
    let mut path = Vec::with_capacity(dims.len() + 1);
    let mut cur = u;
    path.push(cur);
    for &d in dims {
        cur ^= 1u128 << d;
        path.push(cur);
    }
    path
}

/// The next hop e-cube routing takes from `cur` towards `dst`
/// (lowest differing dimension first), or `None` if already there.
#[inline]
pub fn next_hop(cur: Node, dst: Node) -> Option<Node> {
    let x = cur ^ dst;
    if x == 0 {
        None
    } else {
        Some(cur ^ (1u128 << x.trailing_zeros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_path(cube: &Cube, path: &[Node], u: Node, v: Node) {
        assert_eq!(*path.first().unwrap(), u);
        assert_eq!(*path.last().unwrap(), v);
        for w in path.windows(2) {
            assert_eq!(cube.distance(w[0], w[1]), 1, "non-edge in path");
        }
        assert_eq!(path.len() as u32 - 1, cube.distance(u, v), "not shortest");
        let set: std::collections::HashSet<_> = path.iter().collect();
        assert_eq!(set.len(), path.len(), "path revisits a node");
    }

    #[test]
    fn simple_route() {
        let q = Cube::new(4).unwrap();
        let p = shortest_path(&q, 0b0000, 0b1010);
        check_path(&q, &p, 0b0000, 0b1010);
        // Ascending dimension order: flip bit 1, then bit 3.
        assert_eq!(p, vec![0b0000, 0b0010, 0b1010]);
    }

    #[test]
    fn trivial_route_is_single_node() {
        let q = Cube::new(3).unwrap();
        assert_eq!(shortest_path(&q, 0b101, 0b101), vec![0b101]);
    }

    #[test]
    fn all_pairs_q5_shortest() {
        let q = Cube::new(5).unwrap();
        for u in 0..32u128 {
            for v in 0..32u128 {
                let p = shortest_path(&q, u, v);
                check_path(&q, &p, u, v);
            }
        }
    }

    #[test]
    fn custom_order_respected() {
        let q = Cube::new(4).unwrap();
        let p = shortest_path_via_order(&q, 0b0000, 0b1010, &[3, 1]);
        check_path(&q, &p, 0b0000, 0b1010);
        assert_eq!(p, vec![0b0000, 0b1000, 0b1010]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "permute")]
    fn custom_order_must_match_dims() {
        let q = Cube::new(4).unwrap();
        shortest_path_via_order(&q, 0b0000, 0b1010, &[0, 1]);
    }

    #[test]
    fn next_hop_reaches_destination() {
        let q = Cube::new(7).unwrap();
        let (u, v) = (0b0110011u128, 0b1010101u128);
        let mut cur = u;
        let mut hops = 0;
        while let Some(nxt) = next_hop(cur, v) {
            assert_eq!(q.distance(cur, nxt), 1);
            assert!(q.distance(nxt, v) < q.distance(cur, v), "hop not greedy");
            cur = nxt;
            hops += 1;
        }
        assert_eq!(cur, v);
        assert_eq!(hops, q.distance(u, v));
    }

    #[test]
    fn next_hop_none_at_destination() {
        assert_eq!(next_hop(42, 42), None);
    }

    #[test]
    fn symbolic_route_in_q127() {
        let q = Cube::new(127).unwrap();
        let u: Node = 0;
        let v: Node = (1u128 << 127) - 1;
        let p = shortest_path(&q, u, v);
        assert_eq!(p.len(), 128);
        check_path(&q, &p, u, v);
    }
}
