//! Offline subset of the `proptest` API (see `compat/README.md`).
//!
//! Implements the `proptest!` macro, the [`Strategy`] trait with the
//! combinators this workspace uses (`prop_map`, `prop_flat_map`,
//! `prop_filter`), primitive/`any`/`Just`/tuple/range/`collection::vec`
//! strategies, and a deterministic runner. No shrinking and no failure
//! persistence: a failing case panics with the test name, case index,
//! and reason, and the fixed per-test seed makes the failure
//! reproducible by re-running the test.

pub mod test_runner {
    /// Why a test case failed or was rejected.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Reason(String);

    impl Reason {
        pub fn message(&self) -> &str {
            &self.0
        }
    }

    impl From<String> for Reason {
        fn from(s: String) -> Self {
            Reason(s)
        }
    }

    impl From<&str> for Reason {
        fn from(s: &str) -> Self {
            Reason(s.to_owned())
        }
    }

    impl std::fmt::Display for Reason {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Errors a test case body can produce.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case is invalid input (`prop_assume!` failed); retried
        /// without counting against the case budget.
        Reject(Reason),
        /// The property is false for this input.
        Fail(Reason),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<Reason>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<Reason>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Runner configuration. Only `cases` is honoured by this subset.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator driving value sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_u128(&mut self) -> u128 {
            ((self.next_u64() as u128) << 64) | self.next_u64() as u128
        }

        /// Uniform draw in `[0, span)`; `span > 0`.
        pub fn below(&mut self, span: u128) -> u128 {
            if span.is_power_of_two() {
                return self.next_u128() & (span - 1);
            }
            let zone = u128::MAX - (u128::MAX - span + 1) % span;
            loop {
                let draw = self.next_u128();
                if draw <= zone {
                    return draw % span;
                }
            }
        }
    }

    const MAX_REJECTS: u32 = 65_536;

    /// Execute `cases` sampled test cases. Called by the `proptest!`
    /// macro expansion; panics on the first failing case.
    pub fn run<S, F>(config: ProptestConfig, name: &str, strategy: &S, test: F)
    where
        S: crate::strategy::Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        // Fixed seed per test (FNV-1a of the name): deterministic runs.
        let mut seed = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng::new(seed);
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < config.cases {
            let value = match strategy.sample(&mut rng) {
                Some(v) => v,
                None => {
                    rejects += 1;
                    assert!(
                        rejects < MAX_REJECTS,
                        "proptest '{name}': too many strategy rejections ({rejects})"
                    );
                    continue;
                }
            };
            match test(value) {
                Ok(()) => case += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects < MAX_REJECTS,
                        "proptest '{name}': too many assumption rejections ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(reason)) => {
                    panic!("proptest '{name}' failed at case {case}: {reason}");
                }
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`. `sample` returns `None`
    /// when a filter rejects the draw; the runner retries the case.
    pub trait Strategy: Sized {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<R, F>(self, _reason: R, f: F) -> Filter<Self, F>
        where
            R: Into<crate::test_runner::Reason>,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> Option<S2::Value> {
            let outer = self.inner.sample(rng)?;
            (self.f)(outer).sample(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            let v = self.inner.sample(rng)?;
            if (self.f)(&v) {
                Some(v)
            } else {
                None
            }
        }
    }

    /// Integer types range strategies can produce.
    pub trait RangeValue: Copy {
        fn widen(self) -> u128;
        fn narrow(v: u128) -> Self;
    }

    macro_rules! impl_range_value {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn widen(self) -> u128 {
                    self as u128
                }
                fn narrow(v: u128) -> Self {
                    v as $t
                }
            }
        )*};
    }

    impl_range_value!(u8, u16, u32, u64, u128, usize);

    impl<T: RangeValue> Strategy for std::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            let lo = self.start.widen();
            let hi = self.end.widen();
            assert!(lo < hi, "empty range strategy");
            Some(T::narrow(lo + rng.below(hi - lo)))
        }
    }

    impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            let lo = self.start().widen();
            let hi = self.end().widen();
            assert!(lo <= hi, "empty range strategy");
            Some(T::narrow(lo + rng.below(hi - lo + 1)))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.sample(rng)?,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u128() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64);

    /// Strategy over the whole domain of `T`.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary_value(rng))
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Ranges accepted as element-count specifications for [`vec`].
    pub trait SizeRange {
        /// `(min, max)` inclusive bounds.
        fn size_bounds(&self) -> (usize, usize);
    }

    impl SizeRange for std::ops::Range<usize> {
        fn size_bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn size_bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeRange for usize {
        fn size_bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let (lo, hi) = self.size.size_bounds();
            let len = lo + rng.below((hi - lo + 1) as u128) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }

    /// `proptest::collection::vec`: a vector whose length lies in
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (both {:?})",
                format!($($fmt)+),
                a
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let __strategy = ($($strat,)+);
                $crate::test_runner::run(
                    __config,
                    stringify!($name),
                    &__strategy,
                    |__values| {
                        let ($($pat,)+) = __values;
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 5u64..=9) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        /// Tuple + map + filter composition works, and filters hold.
        #[test]
        fn composed_strategies(
            (a, b) in (0u32..100, 0u32..100).prop_filter("distinct", |(a, b)| a != b)
        ) {
            prop_assert_ne!(a, b);
        }

        /// flat_map dependency: second component below the first.
        #[test]
        fn flat_map_dependent(
            (n, k) in (1usize..20).prop_flat_map(|n| (Just(n), 0usize..n))
        ) {
            prop_assert!(k < n, "k={} n={}", k, n);
        }

        /// collection::vec respects its size range.
        #[test]
        fn vec_sizes(v in crate::collection::vec(0u32..5, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            for x in v {
                prop_assert!(x < 5);
            }
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_reroll(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        crate::test_runner::run(
            ProptestConfig::with_cases(16),
            "always_fails",
            &(0u32..10,),
            |_| Err(TestCaseError::fail("nope")),
        );
    }

    #[test]
    fn deterministic_sampling() {
        use crate::strategy::Strategy;
        let strat = (0u32..1000, 0u64..1000);
        let mut r1 = crate::test_runner::TestRng::new(99);
        let mut r2 = crate::test_runner::TestRng::new(99);
        for _ in 0..50 {
            assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
        }
    }
}
