//! Offline subset of the `rayon` API (see `compat/README.md`).
//!
//! Supports `par_iter()` over slices and `Vec`s with the adapters the
//! workspace uses (`map`, `map_init`, `for_each`) and eager terminals
//! (`collect`, `max`). Execution chunks the input across OS threads via
//! `std::thread::scope`; output order matches input order. The thread
//! count is `RAYON_NUM_THREADS` if set, else available parallelism.

use std::num::NonZeroUsize;

/// Number of worker threads used for parallel execution.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `len` items into per-thread subranges of near-equal size.
fn chunk_ranges(len: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.clamp(1, len.max(1));
    let base = len / threads;
    let extra = len % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let size = base + usize::from(t < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Run `work` over each chunk of `0..len`, returning per-chunk results
/// in input order.
fn run_chunked<R, F>(len: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let ranges = chunk_ranges(len, current_num_threads());
    if ranges.len() <= 1 {
        return ranges.into_iter().map(work).collect();
    }
    let mut results: Vec<Option<R>> = Vec::new();
    results.resize_with(ranges.len(), || None);
    std::thread::scope(|scope| {
        let work = &work;
        let mut handles = Vec::with_capacity(ranges.len());
        for range in ranges {
            handles.push(scope.spawn(move || work(range)));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("rayon-compat worker panicked"));
        }
    });
    results.into_iter().map(Option::unwrap).collect()
}

/// Parallel iterator over `&[T]`.
pub struct Iter<'a, T> {
    items: &'a [T],
}

/// `par_iter` entry point, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> Iter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> Iter<'a, T> {
        Iter { items: self }
    }
}

impl<'a, T: Sync> Iter<'a, T> {
    pub fn map<U, F>(self, f: F) -> Map<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        Map {
            items: self.items,
            f,
        }
    }

    pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> MapInit<'a, T, INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> U + Sync,
        U: Send,
    {
        MapInit {
            items: self.items,
            init,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        run_chunked(self.items.len(), |range| {
            for item in &self.items[range] {
                f(item);
            }
        });
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// Result of [`Iter::map`].
pub struct Map<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, U: Send, F: Fn(&'a T) -> U + Sync> Map<'a, T, F> {
    fn run(self) -> impl Iterator<Item = U> {
        run_chunked(self.items.len(), |range| {
            self.items[range].iter().map(&self.f).collect::<Vec<U>>()
        })
        .into_iter()
        .flatten()
    }

    pub fn collect<C: FromIterator<U>>(self) -> C {
        self.run().collect()
    }

    pub fn max(self) -> Option<U>
    where
        U: Ord,
    {
        self.run().max()
    }

    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        self.run().sum()
    }

    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        run_chunked(self.items.len(), |range| {
            for item in &self.items[range] {
                g((self.f)(item));
            }
        });
    }
}

/// Result of [`Iter::map_init`].
pub struct MapInit<'a, T, INIT, F> {
    items: &'a [T],
    init: INIT,
    f: F,
}

impl<'a, T, S, U, INIT, F> MapInit<'a, T, INIT, F>
where
    T: Sync,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> U + Sync,
{
    fn run(self) -> impl Iterator<Item = U> {
        run_chunked(self.items.len(), |range| {
            let mut state = (self.init)();
            self.items[range]
                .iter()
                .map(|item| (self.f)(&mut state, item))
                .collect::<Vec<U>>()
        })
        .into_iter()
        .flatten()
    }

    pub fn collect<C: FromIterator<U>>(self) -> C {
        self.run().collect()
    }
}

pub mod prelude {
    pub use super::IntoParallelRefIterator;
}

pub mod iter {
    pub use super::{IntoParallelRefIterator, Iter, Map, MapInit};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u32> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn map_max() {
        let xs = vec![3u32, 9, 1, 7];
        assert_eq!(xs.par_iter().map(|&x| x).max(), Some(9));
        let empty: Vec<u32> = vec![];
        assert_eq!(empty.par_iter().map(|&x| x).max(), None);
    }

    #[test]
    fn for_each_visits_all() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let xs: Vec<u64> = (1..=100).collect();
        let total = AtomicU64::new(0);
        xs.par_iter().for_each(|&x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn map_init_runs_init_per_chunk() {
        let xs: Vec<u32> = (0..64).collect();
        let out: Vec<u32> = xs
            .par_iter()
            .map_init(|| 1u32, |one, &x| x + *one)
            .collect();
        assert_eq!(out, (1..=64).collect::<Vec<u32>>());
    }

    #[test]
    fn chunk_ranges_cover_everything() {
        for len in [0usize, 1, 5, 17, 100] {
            for threads in [1usize, 2, 3, 8] {
                let ranges = super::chunk_ranges(len, threads);
                let mut covered = 0;
                let mut expect = 0;
                for r in ranges {
                    assert_eq!(r.start, expect);
                    covered += r.len();
                    expect = r.end;
                }
                assert_eq!(covered, len);
            }
        }
    }
}
