//! Offline subset of the `rand` 0.8 API (see `compat/README.md`).
//!
//! Provides the surface this workspace uses: the [`Rng`] and
//! [`SeedableRng`] traits and [`rngs::StdRng`]. The generator is a
//! deterministic SplitMix64 — same seed, same stream, everywhere — but
//! is *not* bit-compatible with upstream rand's ChaCha-based `StdRng`.

/// Types that can produce a uniformly distributed sample from a raw
/// 64-bit draw (the subset of `rand`'s `Standard` distribution we need).
pub trait Standard: Sized {
    fn from_u64(raw: u64, next: impl FnMut() -> u64) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_u64(raw: u64, _next: impl FnMut() -> u64) -> Self {
        raw
    }
}

impl Standard for u32 {
    #[inline]
    fn from_u64(raw: u64, _next: impl FnMut() -> u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Standard for u128 {
    #[inline]
    fn from_u64(raw: u64, mut next: impl FnMut() -> u64) -> Self {
        ((raw as u128) << 64) | next() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn from_u64(raw: u64, _next: impl FnMut() -> u64) -> Self {
        raw >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn from_u64(raw: u64, _next: impl FnMut() -> u64) -> Self {
        // 53 high bits into [0, 1), matching rand's open-low convention.
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_u128(self) -> u128;
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_u128(self) -> u128 {
                self as u128
            }
            #[inline]
            fn from_u128(v: u128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, u128, usize);

/// Half-open or inclusive ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Bounds as `(low, span)` where the sample is `low + x` for
    /// `x` uniform in `[0, span)`. Panics if the range is empty.
    fn bounds(self) -> (u128, u128);
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn bounds(self) -> (u128, u128) {
        let lo = self.start.to_u128();
        let hi = self.end.to_u128();
        assert!(lo < hi, "cannot sample empty range");
        (lo, hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn bounds(self) -> (u128, u128) {
        let lo = self.start().to_u128();
        let hi = self.end().to_u128();
        assert!(lo <= hi, "cannot sample empty range");
        (lo, hi - lo + 1)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The raw 64-bit generator step.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        let raw = self.next_u64();
        T::from_u64(raw, || self.next_u64())
    }

    /// Uniform sample from an integer range (Lemire-style rejection is
    /// overkill here; widening multiply over u128 spans is unbiased
    /// enough for the span sizes the workspace draws from, but we use
    /// simple rejection sampling to stay exactly uniform).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (lo, span) = range.bounds();
        // Rejection-sample the top multiple of `span` to stay unbiased.
        if span.is_power_of_two() {
            let draw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            return T::from_u128(lo + (draw & (span - 1)));
        }
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let draw = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            if draw <= zone {
                return T::from_u128(lo + draw % span);
            }
        }
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's
    /// `StdRng`. Not bit-compatible with upstream; identical streams
    /// for identical seeds is the property the repo relies on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        #[inline]
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(0..17);
            assert!(x < 17);
            let y: usize = rng.gen_range(3..=9);
            assert!((3..=9).contains(&y));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn u128_uses_two_draws() {
        let mut rng = StdRng::seed_from_u64(5);
        let hi_lo: u128 = rng.gen();
        let mut rng2 = StdRng::seed_from_u64(5);
        let a = rng2.gen::<u64>() as u128;
        let b = rng2.gen::<u64>() as u128;
        assert_eq!(hi_lo, (a << 64) | b);
    }
}
