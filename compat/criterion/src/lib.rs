//! Offline subset of the `criterion` API (see `compat/README.md`).
//!
//! Provides `Criterion`, benchmark groups, `BenchmarkId`,
//! `Throughput::Elements`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple wall-clock mean:
//! a warm-up, then timed batches until a target measurement time is
//! reached. Results print as `ns/iter` (plus an elements/sec rate when
//! a throughput is set); there is no statistical analysis, HTML report,
//! or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation: lets a benchmark report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run for a short fixed window to reach steady state.
        let warmup = Duration::from_millis(300);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warmup.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Measurement: batches sized from the estimate, totalling ~1s.
        let target = Duration::from_millis(1000);
        let batch = ((target.as_nanos() as f64 / 10.0 / est_ns) as u64).clamp(1, 1 << 24);
        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        while total_ns < target.as_nanos() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total_ns += t0.elapsed().as_nanos();
            total_iters += batch;
        }
        self.mean_ns = total_ns as f64 / total_iters as f64;
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let human = if mean_ns >= 1e9 {
        format!("{:.3} s", mean_ns / 1e9)
    } else if mean_ns >= 1e6 {
        format!("{:.3} ms", mean_ns / 1e6)
    } else if mean_ns >= 1e3 {
        format!("{:.3} µs", mean_ns / 1e3)
    } else {
        format!("{:.1} ns", mean_ns)
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("bench: {name:<48} {human}/iter  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (mean_ns / 1e9);
            println!("bench: {name:<48} {human}/iter  ({rate:.0} B/s)");
        }
        None => {
            println!("bench: {name:<48} {human}/iter");
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-based here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_benchmark_id().id),
            b.mean_ns,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.mean_ns,
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Conversions accepted where criterion takes a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_owned(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(&name.into_benchmark_id().id, b.mean_ns, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group_name:ident, $($target:path),+ $(,)?) => {
        fn $group_name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { mean_ns: 0.0 };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("gray", 3).id, "gray/3");
        assert_eq!(BenchmarkId::from_parameter(5).id, "5");
    }
}
