//! Topology tour: explore the structure of hierarchical hypercubes and
//! the hypercube substrate algorithms the construction is built from.
//!
//! ```text
//! cargo run --example topology_tour
//! ```

use hhc_suite::graphs::{bfs, props, vertex_disjoint};
use hhc_suite::hhc::Hhc;
use hhc_suite::hypercube::{embed, fan, gray, paths, Cube};

fn main() {
    // --- The family at a glance ------------------------------------------
    println!("HHC family (n = 2^m + m address bits, degree m+1):");
    println!(
        "{:>2} {:>3} {:>24} {:>7} {:>9}",
        "m", "n", "nodes", "degree", "diameter"
    );
    for m in 1..=6 {
        let h = Hhc::new(m).unwrap();
        println!(
            "{m:>2} {:>3} {:>24} {:>7} {:>9}",
            h.n(),
            h.num_nodes(),
            h.degree(),
            h.diameter()
        );
    }

    // --- HHC(1) is the 8-cycle --------------------------------------------
    let h1 = Hhc::new(1).unwrap();
    let g1 = h1.materialize().unwrap();
    println!(
        "\nHHC(1): {} nodes, 2-regular: {}, girth {:?} — the 8-cycle.",
        g1.num_nodes(),
        props::is_regular(&g1, 2),
        props::girth(&g1)
    );

    // --- Ground truth on HHC(2) --------------------------------------------
    let h2 = Hhc::new(2).unwrap();
    let g2 = h2.materialize().unwrap();
    println!(
        "HHC(2): diameter (BFS) = {}, vertex connectivity = {} (= m+1 = {}), bipartite: {}",
        bfs::diameter(&g2).unwrap(),
        vertex_disjoint::vertex_connectivity(&g2),
        h2.degree(),
        props::is_bipartite(&g2)
    );

    // --- The hypercube substrate -------------------------------------------
    let q4 = Cube::new(4).unwrap();
    println!("\nQ_4 substrate (what son-cube algorithms run on):");
    let u = 0b0000u128;
    let v = 0b1011u128;
    let dp = paths::disjoint_paths(&q4, u, v).unwrap();
    println!(
        "  {} disjoint paths {u:#06b} → {v:#06b}, lengths {:?}",
        dp.len(),
        dp.iter().map(|p| p.len() - 1).collect::<Vec<_>>()
    );

    let targets = [0b0001u128, 0b0110, 0b1100, 0b1111];
    let f = fan::fan_paths(&q4, 0, &targets).unwrap();
    println!(
        "  disjoint fan from 0000 to {{0001, 0110, 1100, 1111}}, lengths {:?}",
        f.iter().map(|p| p.len() - 1).collect::<Vec<_>>()
    );

    let ring = embed::hamiltonian_ring(&q4).unwrap();
    println!(
        "  Gray Hamiltonian cycle visits all {} vertices (first 6: {:?})",
        ring.len(),
        &ring[..6]
    );

    let rounds = embed::broadcast_schedule(&q4, 0).unwrap();
    println!(
        "  binomial-tree broadcast reaches 16 nodes in {} rounds ({} sends)",
        rounds.len(),
        rounds.iter().map(|r| r.len()).sum::<usize>()
    );

    // --- Gray-cycle crossing order (the length-bound trick) -----------------
    let positions = [0u64, 5, 3, 6];
    let ordered = gray::sort_along_gray_cycle(&positions, 3, 2);
    println!("\nGray-cycle order of crossing positions {positions:?} anchored at 2: {ordered:?}");
    println!("(consecutive crossings are cheap to reach inside a son-cube —");
    println!(" this ordering is what keeps the disjoint paths near-diameter length)");
}
