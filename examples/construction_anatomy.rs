//! Construction anatomy: dissect how the m+1 disjoint paths are built —
//! crossing plans (rotations vs detours), intermediate son-cube
//! sequences, and the terminal fans.
//!
//! ```text
//! cargo run --example construction_anatomy
//! ```

use hhc_suite::hhc::disjoint::{disjoint_paths_traced, ConstructionCase};
use hhc_suite::hhc::{verify, CrossingOrder, Hhc};

fn main() {
    let net = Hhc::new(3).unwrap();

    // A cross-cube pair with k = 3 differing positions, chosen so that
    // int(Yu) lies inside D (forcing a required rotation) and int(Yv)
    // outside it (forcing a required detour).
    let u = net.node(0b0000_0000, 0b001).unwrap(); // Yu = 1
    let v = net.node(0b0010_0011, 0b100).unwrap(); // D = {0, 1, 5}, Yv = 4
    println!(
        "pair: u = {}   v = {}",
        net.format_node(u),
        net.format_node(v)
    );
    println!("differing cube-field positions D = {{0, 1, 5}} (k = 3), m + 1 = 4 paths\n");

    let (paths, trace) = disjoint_paths_traced(&net, u, v, CrossingOrder::Gray).unwrap();
    verify::verify_disjoint_paths(&net, u, v, &paths).unwrap();

    assert_eq!(trace.case, ConstructionCase::CrossCube);
    println!(
        "case: {:?} — {} rotation plan(s) + {} detour plan(s)",
        trace.case, trace.rotations, trace.detours
    );
    println!(
        "source fan connects Yu={:#05b} to coordinates {:?}",
        net.node_field(u),
        trace.source_fan_targets
    );
    println!(
        "target fan connects Yv={:#05b} to coordinates {:?}\n",
        net.node_field(v),
        trace.target_fan_targets
    );

    for (i, (path, plan)) in paths.iter().zip(&trace.plans).enumerate() {
        let plan = plan.as_ref().expect("cross-cube paths all have plans");
        let kind = if i < trace.rotations {
            "rotation"
        } else {
            "detour"
        };
        println!(
            "P{i} ({kind}): crossings at positions {:?}, length {}",
            plan.positions,
            path.len() - 1
        );
        let cubes = plan.intermediate_cubes(net.cube_field(u));
        println!(
            "    intermediate son-cubes: {}",
            cubes
                .iter()
                .map(|c| format!("{c:#010b}"))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    // The same pair inside one son-cube takes the other branch.
    let w = net.node(0b0000_0000, 0b111).unwrap();
    let (paths_a, trace_a) = disjoint_paths_traced(&net, u, w, CrossingOrder::Gray).unwrap();
    verify::verify_disjoint_paths(&net, u, w, &paths_a).unwrap();
    assert_eq!(trace_a.case, ConstructionCase::SameCube);
    println!(
        "\nsame-cube pair u → {}: {:?}, {} in-cube paths + 1 external loop (plan {:?})",
        net.format_node(w),
        trace_a.case,
        net.m(),
        trace_a.plans.last().unwrap().as_ref().unwrap().positions
    );
}
