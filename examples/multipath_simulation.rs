//! Network simulation: quantify what disjoint-path multipath routing
//! costs and buys on a live (slotted, store-and-forward) network.
//!
//! Sweeps offered load under uniform traffic on HHC(2), comparing the
//! deterministic single Gray route against random selection among the
//! m+1 disjoint paths, then repeats one load point with node faults to
//! show the fault-adaptive strategy delivering everything while the
//! single path drops.
//!
//! ```text
//! cargo run --release --example multipath_simulation
//! ```

use hhc_suite::hhc::Hhc;
use hhc_suite::netsim::{SimConfig, Simulator, Strategy};
use hhc_suite::workloads::{random_fault_set, Pattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let net = Hhc::new(2).unwrap(); // 64 nodes, degree 3
    println!(
        "HHC(2): {} nodes; single Gray route vs random-of-{} disjoint paths\n",
        net.num_nodes(),
        net.degree()
    );

    println!(
        "{:>6}  {:>12} {:>12}  {:>12} {:>12}",
        "load", "single lat", "multi lat", "single thr", "multi thr"
    );
    for rate in [0.02, 0.05, 0.10, 0.20, 0.30] {
        let cfg = SimConfig {
            cycles: 500,
            drain_cycles: 10_000,
            inject_rate: rate,
            seed: 99,
            ..SimConfig::default()
        };
        let s = Simulator::new(&net, Pattern::UniformRandom, Strategy::SinglePath).run(cfg);
        let m = Simulator::new(&net, Pattern::UniformRandom, Strategy::MultipathRandom).run(cfg);
        println!(
            "{rate:>6.2}  {:>12.2} {:>12.2}  {:>12.4} {:>12.4}",
            s.mean_latency().unwrap(),
            m.mean_latency().unwrap(),
            s.throughput(),
            m.throughput()
        );
    }
    println!("\nmultipath pays a small latency premium (families include detours).");

    // Now inject faults: the premium buys guaranteed delivery. With
    // f = m = 2 faults, the theorem says fault-adaptive routing can never
    // fail (packets to a faulty destination are excluded — no strategy
    // can save those, and they are counted separately).
    let mut rng = StdRng::seed_from_u64(7);
    let faults = random_fault_set(&net, net.m() as usize, &[], &mut rng);
    println!(
        "\nwith f = m = {} random faulty nodes at load 0.05:",
        faults.len()
    );
    let cfg = SimConfig {
        cycles: 500,
        drain_cycles: 10_000,
        inject_rate: 0.05,
        seed: 99,
        ..SimConfig::default()
    };
    let s = Simulator::new(&net, Pattern::UniformRandom, Strategy::SinglePath)
        .with_faults(faults.clone())
        .run(cfg);
    let a = Simulator::new(&net, Pattern::UniformRandom, Strategy::FaultAdaptive)
        .with_faults(faults)
        .run(cfg);
    println!(
        "  single-path:    {} injected, {} routing drops",
        s.injected, s.dropped_unroutable
    );
    println!(
        "  fault-adaptive: {} injected, {} routing drops",
        a.injected, a.dropped_unroutable
    );
    assert_eq!(
        a.dropped_unroutable, 0,
        "theorem: f ≤ m faults can never make a live pair unroutable"
    );
    assert_eq!(a.delivered, a.injected, "network must drain");
    println!("  fault-adaptive had zero routing drops, as the theorem guarantees.");
}
