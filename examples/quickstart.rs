//! Quickstart: build a hierarchical hypercube, construct the m+1
//! node-disjoint paths between two nodes, and verify them.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hhc_suite::hhc::{bounds, verify, Hhc};

fn main() {
    // HHC(3): son-cubes are 3-dimensional, addresses are n = 2^3 + 3 = 11
    // bits, so the network has 2^11 = 2048 nodes of degree 4.
    let net = Hhc::new(3).expect("m in 1..=6");
    println!(
        "HHC(m={}): {} nodes, degree {}, diameter {}",
        net.m(),
        net.num_nodes(),
        net.degree(),
        net.diameter()
    );

    // Addresses are (cube field X, node field Y).
    let u = net.node(0b0001_0010, 0b001).unwrap();
    let v = net.node(0b1010_0000, 0b100).unwrap();
    println!("u = {}", net.format_node(u));
    println!("v = {}", net.format_node(v));

    // The paper's construction: m + 1 internally vertex-disjoint paths.
    let paths = net.disjoint_paths(u, v).unwrap();
    println!("\n{} node-disjoint paths:", paths.len());
    for (i, p) in paths.iter().enumerate() {
        let rendered: Vec<String> = p.iter().map(|&x| net.format_node(x)).collect();
        println!("  P{i} (len {:2}): {}", p.len() - 1, rendered.join(" → "));
    }

    // Nothing is trusted unverified: re-check validity, simplicity and
    // pairwise internal disjointness, and the provable length bound.
    verify::verify_disjoint_paths(&net, u, v, &paths).expect("must verify");
    let bound = bounds::length_bound(&net, u, v);
    let max = paths.iter().map(|p| p.len() - 1).max().unwrap();
    println!("\nmax length {max} ≤ provable bound {bound} ✓");

    // The same construction is symbolic: it works unchanged on HHC(6),
    // a network of 2^70 ≈ 1.2·10^21 nodes.
    let big = Hhc::new(6).unwrap();
    let a = big.node(0, 0).unwrap();
    let b = big.node(u128::MAX >> 64, 0b111111).unwrap();
    let big_paths = big.disjoint_paths(a, b).unwrap();
    verify::verify_disjoint_paths(&big, a, b, &big_paths).expect("must verify");
    println!(
        "HHC(6) ({} nodes): built and verified {} disjoint paths, max length {}",
        big.num_nodes(),
        big_paths.len(),
        big_paths.iter().map(|p| p.len() - 1).max().unwrap()
    );
}
