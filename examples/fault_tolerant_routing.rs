//! Fault-tolerant routing: demonstrate the paper's headline guarantee —
//! with at most `m` node faults (and alive endpoints), communication can
//! never be cut off, because each fault blocks at most one of the `m + 1`
//! internally disjoint paths.
//!
//! ```text
//! cargo run --example fault_tolerant_routing
//! ```

use hhc_suite::hhc::Hhc;
use hhc_suite::netsim::fault::analyze;
use hhc_suite::netsim::strategy::path_blocked;
use hhc_suite::workloads::random_fault_set;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn main() {
    let net = Hhc::new(3).unwrap(); // 2048 nodes, 4 disjoint paths per pair
    let mut rng = StdRng::seed_from_u64(2024);

    let u = net.node(0x2B, 0b010).unwrap();
    let v = net.node(0xD4, 0b101).unwrap();
    println!(
        "pair: {} → {}   (m = {}, so {} disjoint paths)",
        net.format_node(u),
        net.format_node(v),
        net.m(),
        net.degree()
    );

    // Adversarial demonstration: fault exactly one interior node of each
    // of the first m paths — the (m+1)-th still delivers.
    let paths = net.disjoint_paths(u, v).unwrap();
    let adversarial: HashSet<_> = paths[..net.m() as usize]
        .iter()
        .map(|p| p[p.len() / 2])
        .collect();
    println!(
        "\nadversarially faulting one interior node of {} of the {} paths:",
        net.m(),
        net.degree()
    );
    for (i, p) in paths.iter().enumerate() {
        let blocked = path_blocked(p, &adversarial);
        println!(
            "  P{i}: len {:2}  {}",
            p.len() - 1,
            if blocked { "BLOCKED" } else { "alive ✓" }
        );
    }
    let out = analyze(&net, u, v, &adversarial);
    assert!(out.multipath_ok);
    println!("multipath delivery survives: {}", out.multipath_ok);

    // Statistical demonstration: random fault sets of growing size.
    println!("\nrandom faults (1000 trials each):");
    println!("{:>4}  {:>12}  {:>12}", "f", "single-path", "multipath");
    for f in [1usize, 3, 9, 32, 128] {
        let mut single = 0u32;
        let mut multi = 0u32;
        for _ in 0..1000 {
            let faults = random_fault_set(&net, f, &[u, v], &mut rng);
            let out = analyze(&net, u, v, &faults);
            single += out.single_path_ok as u32;
            multi += out.multipath_ok as u32;
        }
        println!(
            "{f:>4}  {:>11.1}%  {:>11.1}%",
            single as f64 / 10.0,
            multi as f64 / 10.0
        );
        if f <= net.m() as usize {
            assert_eq!(multi, 1000, "guarantee: f ≤ m can never disconnect");
        }
    }
    println!("\nf ≤ m rows are provably 100% — that is the theorem in action.");
}
